package wcl_test

import (
	"fmt"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/sim"
	"whisper/internal/transport"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// buildCircuitWorld builds a converged world with the given circuit
// knobs (Circuits itself stays off: the tests drive SendCircuit
// explicitly, which works regardless of the flag).
func buildCircuitWorld(t testing.TB, seed int64, n int, cfg wcl.Config) *sim.World {
	t.Helper()
	if cfg.MinPublic == 0 {
		cfg.MinPublic = 3
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        n,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		WCL:      &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)
	return w
}

// TestCircuitEstablishAndZeroRSASteadyState is the tentpole assertion:
// after the one-time setup, 100 messages ride the circuit with zero
// RSA operations anywhere in the network — source, relays and exit do
// symmetric work only — and every message is delivered exactly once.
func TestCircuitEstablishAndZeroRSASteadyState(t *testing.T) {
	w := buildCircuitWorld(t, 41, 120, wcl.Config{})
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]

	received := map[string]int{}
	d.WCL.OnReceive = func(p []byte) { received[string(p)]++ }

	// Establish: the first send pays the onion setup.
	var first *wcl.Result
	s.WCL.SendCircuit(destFor(w, d, 3), []byte("cell-0"), func(r wcl.Result) { first = &r })
	w.Sim.RunFor(30 * time.Second)
	if first == nil || first.Outcome == wcl.Failed {
		t.Fatalf("establishing send failed: %+v", first)
	}
	if !s.WCL.HasCircuit(d.ID()) {
		t.Fatal("no established circuit after first send")
	}
	st := s.WCL.Stats()
	if st.CircuitsEstablished != 1 || st.CircuitsOpen != 1 {
		t.Fatalf("established=%d open=%d, want 1/1", st.CircuitsEstablished, st.CircuitsOpen)
	}
	if setup := w.CPUTotal(); setup.RSAEncs == 0 || setup.RSADecs == 0 {
		t.Fatal("setup did not pay any RSA — circuit established without an onion?")
	}

	// Steady state: 100 cells, zero RSA anywhere.
	before := w.CPUTotal()
	const cells = 100
	results := 0
	for i := 1; i <= cells; i++ {
		s.WCL.SendCircuit(destFor(w, d, 3), []byte(fmt.Sprintf("cell-%d", i)), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				results++
			}
		})
	}
	w.Sim.RunFor(30 * time.Second)
	after := w.CPUTotal()

	if results != cells {
		t.Fatalf("only %d/%d cells acknowledged", results, cells)
	}
	if got := after.RSAEncs - before.RSAEncs; got != 0 {
		t.Fatalf("steady state performed %d RSA encryptions, want 0", got)
	}
	if got := after.RSADecs - before.RSADecs; got != 0 {
		t.Fatalf("steady state performed %d RSA decryptions, want 0", got)
	}
	if got := after.Signs + after.Verifys - before.Signs - before.Verifys; got != 0 {
		t.Fatalf("steady state performed %d RSA signature ops, want 0", got)
	}
	if after.AESOps == before.AESOps {
		t.Fatal("steady state did no symmetric work — cells not flowing?")
	}
	for msg, n := range received {
		if n != 1 {
			t.Fatalf("%q delivered %d times, want exactly once", msg, n)
		}
	}
	if len(received) != cells+1 {
		t.Fatalf("delivered %d distinct messages, want %d", len(received), cells+1)
	}
	st = s.WCL.Stats()
	if st.CircuitsEstablished != 1 {
		t.Fatalf("steady state re-established circuits: %d", st.CircuitsEstablished)
	}
	if st.CellsAcked < cells {
		t.Fatalf("CellsAcked=%d < %d", st.CellsAcked, cells)
	}
	// The cells crossed real relays: someone forwarded them.
	var forwarded uint64
	for _, n := range w.Live() {
		forwarded += n.WCL.Stats().CellsForwarded
	}
	if forwarded < cells {
		t.Fatalf("CellsForwarded=%d across the network, want ≥ %d (cells skipping mixes?)", forwarded, cells)
	}
}

// TestCircuitRotation: a circuit past its cell budget is replaced by a
// fresh path while traffic keeps flowing.
func TestCircuitRotation(t *testing.T) {
	w := buildCircuitWorld(t, 42, 120, wcl.Config{CircuitMaxCells: 5})
	natted := w.LiveNatted()
	s, d := natted[2], natted[3]

	received := map[string]int{}
	d.WCL.OnReceive = func(p []byte) { received[string(p)]++ }

	const sends = 24
	ok := 0
	for i := 0; i < sends; i++ {
		s.WCL.SendCircuit(destFor(w, d, 3), []byte(fmt.Sprintf("r-%d", i)), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)

	if ok < sends-1 {
		t.Fatalf("only %d/%d sends succeeded across rotations", ok, sends)
	}
	st := s.WCL.Stats()
	if st.CircuitsRotated == 0 {
		t.Fatalf("no rotation after %d cells with CircuitMaxCells=5: %+v", sends, st)
	}
	if st.CircuitsEstablished < 2 {
		t.Fatalf("rotation never established a replacement path: %+v", st)
	}
	// Retired paths are closed, the live one stays: exactly one open.
	if st.CircuitsOpen != 1 {
		t.Fatalf("CircuitsOpen=%d after rotations, want 1", st.CircuitsOpen)
	}
	for msg, n := range received {
		if n != 1 {
			t.Fatalf("%q delivered %d times across rotation, want exactly once", msg, n)
		}
	}
}

// TestCircuitKeepaliveAndIdleTeardown: a quiet circuit is kept warm by
// pings, and an idle one is torn down entirely.
func TestCircuitKeepaliveAndIdleTeardown(t *testing.T) {
	w := buildCircuitWorld(t, 43, 120, wcl.Config{
		CircuitKeepalive: 10 * time.Second,
		CircuitIdle:      45 * time.Second,
	})
	natted := w.LiveNatted()
	s, d := natted[4], natted[5]

	var res *wcl.Result
	s.WCL.SendCircuit(destFor(w, d, 3), []byte("hello"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(15 * time.Second)
	if res == nil || res.Outcome == wcl.Failed {
		t.Fatalf("establishing send failed: %+v", res)
	}

	// Quiet but not yet idle: pings flow, the circuit stays.
	w.Sim.RunFor(20 * time.Second)
	st := s.WCL.Stats()
	if st.Keepalives == 0 {
		t.Fatalf("no keepalive ping on a quiet circuit: %+v", st)
	}
	if !s.WCL.HasCircuit(d.ID()) {
		t.Fatal("circuit torn down before CircuitIdle elapsed")
	}

	// Past the idle horizon: torn down, gauge back to zero.
	w.Sim.RunFor(2 * time.Minute)
	if s.WCL.HasCircuit(d.ID()) {
		t.Fatal("idle circuit not torn down")
	}
	st = s.WCL.Stats()
	if st.CircuitsClosed == 0 || st.CircuitsOpen != 0 {
		t.Fatalf("idle teardown not accounted: closed=%d open=%d", st.CircuitsClosed, st.CircuitsOpen)
	}
}

// TestCircuitBreakFallsBackToOneShot: killing every relay that holds
// the circuit's table entries breaks the path; in-flight and later
// sends must still complete via the one-shot fallback.
func TestCircuitBreakFallsBackToOneShot(t *testing.T) {
	w := buildCircuitWorld(t, 44, 120, wcl.Config{})
	natted := w.LiveNatted()
	s, d := natted[6], natted[7]

	received := map[string]int{}
	d.WCL.OnReceive = func(p []byte) { received[string(p)]++ }

	var res *wcl.Result
	s.WCL.SendCircuit(destFor(w, d, 3), []byte("pre"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(20 * time.Second)
	if res == nil || res.Outcome == wcl.Failed || !s.WCL.HasCircuit(d.ID()) {
		t.Fatalf("circuit not established: %+v", res)
	}

	// Kill every node holding a relay-side entry (the mixes of this
	// circuit — nobody else has table state in this quiet world).
	killed := 0
	for _, n := range w.Live() {
		if n == s || n == d {
			continue
		}
		if n.WCL.Stats().CircuitTableEntries > 0 {
			w.Kill(n)
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("no relay held a circuit table entry")
	}

	const sends = 6
	done := make([]int, sends)
	results := make([]*wcl.Result, sends)
	for i := 0; i < sends; i++ {
		i := i
		s.WCL.SendCircuit(destFor(w, d, 3), []byte(fmt.Sprintf("post-%d", i)), func(r wcl.Result) {
			done[i]++
			results[i] = &r
		})
	}
	w.Sim.RunFor(2 * time.Minute)

	ok := 0
	for i := 0; i < sends; i++ {
		if done[i] != 1 {
			t.Fatalf("send %d: done called %d times, want exactly 1", i, done[i])
		}
		if results[i].Outcome != wcl.Failed {
			ok++
		}
	}
	if ok < sends-1 {
		t.Fatalf("only %d/%d sends survived the broken circuit", ok, sends)
	}
	st := s.WCL.Stats()
	if st.CellFallbacks == 0 {
		t.Fatalf("broken circuit produced no one-shot fallbacks: %+v", st)
	}
	for msg, n := range received {
		if n != 1 {
			t.Fatalf("%q delivered %d times, want exactly once", msg, n)
		}
	}
}

// circTag returns the WCL message tag (1..8) of an app payload, or 0.
func circTag(payload []byte) byte {
	if len(payload) == 0 || payload[0] > 8 {
		return 0
	}
	return payload[0]
}

// TestCircuitExactlyOnceUnderDuplication duplicates circuit wire
// messages — setup, data cells, acks, back-to-back and reordered — and
// requires exactly-once delivery plus exactly one Result per send.
func TestCircuitExactlyOnceUnderDuplication(t *testing.T) {
	cases := []struct {
		name  string
		dup   map[byte]bool
		delay time.Duration
	}{
		{"duplicated setup", map[byte]bool{3: true}, 0},
		{"duplicated data cell", map[byte]bool{5: true}, 0},
		{"reordered data cell", map[byte]bool{5: true}, 8 * time.Second},
		{"duplicated acks", map[byte]bool{4: true, 6: true}, 0},
		{"everything duplicated", map[byte]bool{3: true, 4: true, 5: true, 6: true, 7: true}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := buildCircuitWorld(t, 45, 120, wcl.Config{})
			for _, n := range w.Nodes {
				orig := n.Nylon.AppHandler
				n.Nylon.AppHandler = func(src transport.Endpoint, payload []byte) {
					orig(src, payload)
					if tc.dup[circTag(payload)] {
						p := append([]byte(nil), payload...)
						w.Sim.After(tc.delay, func() { orig(src, p) })
					}
				}
			}
			natted := w.LiveNatted()
			s, d := natted[0], natted[1]
			received := map[string]int{}
			d.WCL.OnReceive = func(p []byte) { received[string(p)]++ }

			const sends = 10
			done := make([]int, sends)
			ok := 0
			for i := 0; i < sends; i++ {
				i := i
				s.WCL.SendCircuit(destFor(w, d, 3), []byte(fmt.Sprintf("dup-%d", i)), func(r wcl.Result) {
					done[i]++
					if r.Outcome != wcl.Failed {
						ok++
					}
				})
				w.Sim.RunFor(time.Second)
			}
			w.Sim.RunFor(time.Minute)

			for i := 0; i < sends; i++ {
				if done[i] != 1 {
					t.Fatalf("send %d: done called %d times, want exactly 1", i, done[i])
				}
			}
			if ok < sends-1 {
				t.Fatalf("only %d/%d sends succeeded under %s", ok, sends, tc.name)
			}
			for msg, n := range received {
				if n != 1 {
					t.Fatalf("%q delivered %d times, want exactly once", msg, n)
				}
			}
			if tc.dup[5] {
				var dupCells uint64
				for _, n := range w.Live() {
					dupCells += n.WCL.Stats().DupCells
				}
				if dupCells == 0 {
					t.Fatal("duplicated data cells were never suppressed at the exit")
				}
			}
		})
	}
}

// TestCircuitExactlyOnceUnderFaultModel runs circuit traffic under the
// netem fault layer duplicating every datagram: the exit's cell dedup
// must keep delivery exactly-once.
func TestCircuitExactlyOnceUnderFaultModel(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{
		Seed:     46,
		N:        120,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		WCL:      &wcl.Config{MinPublic: 3},
		Faults: &netem.FaultModel{
			DupProb:       1,
			ReorderProb:   0.25,
			ReorderJitter: 200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	received := map[string]int{}
	d.WCL.OnReceive = func(p []byte) { received[string(p)]++ }

	const sends = 12
	ok := 0
	for i := 0; i < sends; i++ {
		s.WCL.SendCircuit(destFor(w, d, 3), []byte(fmt.Sprintf("fault-cell-%d", i)), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)

	if ok < sends-2 {
		t.Fatalf("only %d/%d circuit sends succeeded under duplication faults", ok, sends)
	}
	for msg, n := range received {
		if n != 1 {
			t.Fatalf("%q delivered %d times, want exactly once", msg, n)
		}
	}
	var dupCells uint64
	for _, n := range w.Live() {
		dupCells += n.WCL.Stats().DupCells
	}
	if dupCells == 0 {
		t.Fatal("DupProb=1 produced zero suppressed duplicate cells")
	}
	if fs := w.Net.FaultStats(); fs.Duplicated == 0 {
		t.Fatalf("fault model idle: %+v", fs)
	}
}

// TestEarlyFailureEmitsOneResultAndNoTrace pins the unified
// early-failure path: a send that fails before any path state exists
// (unknown destination key) reports exactly one Result — Failed, zero
// attempts, zero elapsed — fires OnResult exactly once, and emits no
// trace event, through the one-shot and the circuit entry points alike.
func TestEarlyFailureEmitsOneResultAndNoTrace(t *testing.T) {
	w := buildCircuitWorld(t, 47, 60, wcl.Config{})
	s := w.Live()[0]
	cc := &obs.CorrelatingCollector{}
	s.WCL.Trace = obs.NewTracer(uint64(s.Nylon.ID()), cc)

	entryPoints := map[string]func(wcl.Dest, []byte, func(wcl.Result)){
		"send":        s.WCL.Send,
		"sendCircuit": s.WCL.SendCircuit,
	}
	for name, send := range entryPoints {
		t.Run(name, func(t *testing.T) {
			evBefore := len(cc.Events())
			sentBefore := s.WCL.Stats().Sent
			failedBefore := s.WCL.Stats().Failed
			onResults := 0
			s.WCL.OnResult = func(id identity.NodeID, r wcl.Result) { onResults++ }
			defer func() { s.WCL.OnResult = nil }()

			done := 0
			var res wcl.Result
			send(wcl.Dest{ID: 999}, []byte("x"), func(r wcl.Result) {
				done++
				res = r
			})
			w.Sim.RunFor(5 * time.Second)

			if done != 1 {
				t.Fatalf("done called %d times, want exactly 1", done)
			}
			if onResults != 1 {
				t.Fatalf("OnResult fired %d times, want exactly 1", onResults)
			}
			if res.Outcome != wcl.Failed || res.Attempts != 0 || res.Elapsed != 0 {
				t.Fatalf("early failure result = %+v, want Failed with 0 attempts and 0 elapsed", res)
			}
			if got := len(cc.Events()) - evBefore; got != 0 {
				t.Fatalf("early failure emitted %d trace events, want 0", got)
			}
			if got := s.WCL.Stats().Sent - sentBefore; got != 1 {
				t.Fatalf("Sent advanced by %d, want 1", got)
			}
			if got := s.WCL.Stats().Failed - failedBefore; got != 1 {
				t.Fatalf("Failed advanced by %d, want 1", got)
			}
		})
	}
}

// TestCircuitsDisabledIsZeroBehavior fingerprints the default
// configuration: with Config.Circuits unset, one-shot traffic must
// leave every circuit counter at zero on every node, never put a
// circuit message tag on the wire, and never emit a circuit trace
// kind — the circuit code is provably off-path.
func TestCircuitsDisabledIsZeroBehavior(t *testing.T) {
	w := buildWCLWorld(t, 48, 120)
	cc := &obs.CorrelatingCollector{}
	for _, n := range w.Live() {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), cc)
	}
	tagsSeen := map[byte]int{}
	w.Net.SetTap(func(dg netem.Datagram) {
		r := wire.NewReader(dg.Payload)
		if r.U8() != nylon.MsgApp {
			return
		}
		if tag := r.U8(); r.Err() == nil && tag >= 1 && tag <= 8 {
			tagsSeen[tag]++
		}
	})

	natted := w.LiveNatted()
	ok := 0
	const sends = 10
	for i := 0; i < sends; i++ {
		s := natted[i%len(natted)]
		d := natted[(i+5)%len(natted)]
		s.WCL.Send(destFor(w, d, 3), []byte(fmt.Sprintf("plain-%d", i)), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
	}
	w.Sim.RunFor(time.Minute)
	if ok < sends-1 {
		t.Fatalf("only %d/%d one-shot sends succeeded", ok, sends)
	}

	if tagsSeen[1] == 0 || tagsSeen[2] == 0 {
		t.Fatalf("tap missed one-shot traffic (parse drift?): %v", tagsSeen)
	}
	for tag := byte(3); tag <= 8; tag++ {
		if tagsSeen[tag] != 0 {
			t.Fatalf("circuit wire tag %d appeared %d times with circuits disabled", tag, tagsSeen[tag])
		}
	}
	for _, n := range w.Live() {
		st := n.WCL.Stats()
		if st.CircuitsOpened+st.CircuitsEstablished+st.CircuitsFailed+st.CircuitsRotated+
			st.CircuitsClosed+st.CellsSent+st.CellsAcked+st.CellsForwarded+st.CellsDelivered+
			st.DupCells+st.CellDrops+st.CellFallbacks+st.Keepalives != 0 {
			t.Fatalf("node %d has non-zero circuit counters with circuits disabled: %+v", n.ID(), st)
		}
		if st.CircuitsOpen != 0 || st.CircuitTableEntries != 0 {
			t.Fatalf("node %d has circuit gauge state with circuits disabled", n.ID())
		}
	}
	for _, ev := range cc.Events() {
		if ev.Kind == obs.KindCellSend || ev.Kind == obs.KindCellForward || ev.Kind == obs.KindCellDeliver {
			t.Fatalf("circuit trace kind %v emitted with circuits disabled", ev.Kind)
		}
	}
}

// TestCircuitsFlagRoutesSendThroughCircuits: with Config.Circuits set,
// plain Send transparently rides circuits.
func TestCircuitsFlagRoutesSendThroughCircuits(t *testing.T) {
	w := buildCircuitWorld(t, 49, 120, wcl.Config{Circuits: true})
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	got := 0
	d.WCL.OnReceive = func([]byte) { got++ }

	const sends = 5
	ok := 0
	for i := 0; i < sends; i++ {
		s.WCL.Send(destFor(w, d, 3), []byte(fmt.Sprintf("flag-%d", i)), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)

	if ok < sends || got < sends {
		t.Fatalf("acked %d delivered %d of %d", ok, got, sends)
	}
	st := s.WCL.Stats()
	if st.CircuitsEstablished == 0 || st.CellsSent == 0 {
		t.Fatalf("Send did not ride the circuit layer with Circuits=true: %+v", st)
	}
}

// TestCircuitRelayTableBounded: the relay-side table evicts LRU past
// its bound rather than growing with every circuit that ever crossed.
func TestCircuitRelayTableBounded(t *testing.T) {
	w := buildCircuitWorld(t, 50, 120, wcl.Config{CircuitTableMax: 4})
	natted := w.LiveNatted()
	s := natted[0]

	// Open circuits to many distinct destinations: relay tables on the
	// shared mixes see more entries than their bound.
	opened := 0
	for i := 1; i < len(natted) && opened < 12; i++ {
		d := natted[i]
		dest := destFor(w, d, 3)
		if len(dest.Helpers) == 0 {
			continue
		}
		s.WCL.SendCircuit(dest, []byte("spread"), nil)
		opened++
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)

	for _, n := range w.Live() {
		if e := n.WCL.Stats().CircuitTableEntries; e > 4 {
			t.Fatalf("node %d holds %d relay circuit entries, bound is 4", n.ID(), e)
		}
	}
}
