package wcl_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/sim"
	"whisper/internal/transport"
	"whisper/internal/wcl"
)

// wclMsgTag returns the WCL message tag of an app payload (1 = forward,
// 2 = ack), or 0 for anything unparseable.
func wclMsgTag(payload []byte) byte {
	if len(payload) == 0 || payload[0] > 2 {
		return 0
	}
	return payload[0]
}

// injectDuplicates wraps every node's app handler so that messages with
// a tag in dup are processed a second time after delay — a deterministic
// stand-in for network duplication (delay 0 ⇒ back-to-back duplicate)
// and reordering (a delay long enough that the copy arrives after the
// path has completed).
func injectDuplicates(w *sim.World, dup map[byte]bool, delay time.Duration) {
	for _, n := range w.Nodes {
		orig := n.Nylon.AppHandler
		n.Nylon.AppHandler = func(src transport.Endpoint, payload []byte) {
			orig(src, payload)
			if dup[wclMsgTag(payload)] {
				p := append([]byte(nil), payload...)
				w.Sim.After(delay, func() { orig(src, p) })
			}
		}
	}
}

// TestExactlyOnceUnderDuplication drives sends through a world where
// forwards, acks, or both are duplicated — back-to-back or late
// (reordered past the path's completion) — and requires exactly-once
// observable behavior: one OnReceive and one Delivered increment per
// message, one done callback per send.
func TestExactlyOnceUnderDuplication(t *testing.T) {
	cases := []struct {
		name  string
		dup   map[byte]bool
		delay time.Duration
	}{
		{"duplicated forward", map[byte]bool{1: true}, 0},
		{"reordered forward", map[byte]bool{1: true}, 8 * time.Second},
		{"duplicated ack", map[byte]bool{2: true}, 0},
		{"forward and ack", map[byte]bool{1: true, 2: true}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := buildWCLWorld(t, 31, 120)
			injectDuplicates(w, tc.dup, tc.delay)

			natted := w.LiveNatted()
			received := map[string]int{}
			for _, n := range w.Live() {
				n.WCL.OnReceive = func(p []byte) { received[string(p)]++ }
			}
			var deliveredBefore uint64
			for _, n := range w.Live() {
				deliveredBefore += n.WCL.Stats().Delivered
			}

			const sends = 10
			doneCalls := make([]int, sends)
			results := make([]*wcl.Result, sends)
			for i := 0; i < sends; i++ {
				s := natted[i%len(natted)]
				d := natted[(i+5)%len(natted)]
				dest := destFor(w, d, 3)
				i := i
				s.WCL.Send(dest, []byte(fmt.Sprintf("msg-%d", i)), func(r wcl.Result) {
					doneCalls[i]++
					results[i] = &r
				})
			}
			w.Sim.RunFor(2 * time.Minute)

			ok := 0
			for i := 0; i < sends; i++ {
				if doneCalls[i] != 1 {
					t.Fatalf("send %d: done called %d times, want exactly 1", i, doneCalls[i])
				}
				if results[i].Outcome != wcl.Failed {
					ok++
				}
			}
			if ok < sends-1 {
				t.Fatalf("only %d/%d sends succeeded under %s", ok, sends, tc.name)
			}
			for msg, count := range received {
				if count != 1 {
					t.Fatalf("%q delivered %d times, want exactly once", msg, count)
				}
			}
			if len(received) < ok {
				t.Fatalf("%d distinct messages received < %d acked", len(received), ok)
			}
			var deliveredAfter, dupFwd, dupDeliv uint64
			for _, n := range w.Live() {
				deliveredAfter += n.WCL.Stats().Delivered
				dupFwd += n.WCL.Stats().DupForwards
				dupDeliv += n.WCL.Stats().DupDeliveries
			}
			if got := deliveredAfter - deliveredBefore; got != uint64(len(received)) {
				t.Fatalf("Delivered advanced by %d for %d distinct deliveries", got, len(received))
			}
			if tc.dup[1] && dupFwd+dupDeliv == 0 {
				t.Fatal("no duplicate forward was ever suppressed — injection not reaching the WCL?")
			}
		})
	}
}

// TestExactlyOnceUnderFaultModel runs the same property end-to-end under
// the netem fault layer: every datagram duplicated, a quarter reordered.
// The transport sees massive duplication; the application must not.
func TestExactlyOnceUnderFaultModel(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{
		Seed:     32,
		N:        120,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		WCL:      &wcl.Config{MinPublic: 3},
		Faults: &netem.FaultModel{
			DupProb:       1,
			ReorderProb:   0.25,
			ReorderJitter: 200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	received := map[string]int{}
	for _, n := range w.Live() {
		n.WCL.OnReceive = func(p []byte) { received[string(p)]++ }
	}
	var results []wcl.Result
	const sends = 10
	for i := 0; i < sends; i++ {
		s := natted[i%len(natted)]
		d := natted[(i+3)%len(natted)]
		s.WCL.Send(destFor(w, d, 3), []byte(fmt.Sprintf("fault-%d", i)),
			func(r wcl.Result) { results = append(results, r) })
	}
	w.Sim.RunFor(2 * time.Minute)

	if len(results) != sends {
		t.Fatalf("got %d results, want %d", len(results), sends)
	}
	ok := 0
	for _, r := range results {
		if r.Outcome != wcl.Failed {
			ok++
		}
	}
	if ok < sends-2 {
		t.Fatalf("only %d/%d sends succeeded under duplication faults: %+v", ok, sends, results)
	}
	for msg, count := range received {
		if count != 1 {
			t.Fatalf("%q delivered %d times, want exactly once", msg, count)
		}
	}
	if fs := w.Net.FaultStats(); fs.Duplicated == 0 || fs.Reordered == 0 {
		t.Fatalf("fault model idle: %+v", fs)
	}
	var dupFwd uint64
	for _, n := range w.Live() {
		dupFwd += n.WCL.Stats().DupForwards
	}
	if dupFwd == 0 {
		t.Fatal("DupProb=1 produced zero suppressed duplicate forwards")
	}
}

// TestDuplicateForwardAtDestResendsAck: when the destination has already
// delivered a path and sees the forward again (its ack was lost or
// outrun), it must answer with a fresh ack rather than stay silent, so
// the source does not burn a retry.
func TestDuplicateForwardAtDestResendsAck(t *testing.T) {
	w := buildWCLWorld(t, 33, 120)
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]

	// Replay forwards at the destination only, well after delivery.
	var replayed int
	orig := d.Nylon.AppHandler
	d.Nylon.AppHandler = func(src transport.Endpoint, payload []byte) {
		orig(src, payload)
		if wclMsgTag(payload) == 1 {
			replayed++
			p := append([]byte(nil), payload...)
			w.Sim.After(3*time.Second, func() { orig(src, p) })
		}
	}

	var payloads [][]byte
	d.WCL.OnReceive = func(p []byte) { payloads = append(payloads, append([]byte(nil), p...)) }
	var res *wcl.Result
	s.WCL.Send(destFor(w, d, 3), []byte("once"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(time.Minute)

	if res == nil || res.Outcome == wcl.Failed {
		t.Fatalf("send failed: %+v", res)
	}
	if replayed == 0 {
		t.Fatal("destination never saw a forward (topology drift?)")
	}
	if len(payloads) != 1 || !bytes.Equal(payloads[0], []byte("once")) {
		t.Fatalf("destination delivered %d times", len(payloads))
	}
	if d.WCL.Stats().Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", d.WCL.Stats().Delivered)
	}
	if d.WCL.Stats().DupForwards+d.WCL.Stats().DupDeliveries == 0 {
		t.Fatal("replay not counted as suppressed duplicate")
	}
	// The replayed forward answered with an ack: more acks forwarded
	// than the single delivery strictly needs.
	if d.WCL.Stats().AcksForwarded < 2 {
		t.Fatalf("AcksForwarded = %d, want ≥ 2 (ack not resent on duplicate)", d.WCL.Stats().AcksForwarded)
	}
}
