package wcl

import (
	"hash/fnv"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Relay and exit handling: dispatching WCL messages off the nylon app
// channel, peeling one-shot onions, and forwarding towards the next
// hop or delivering at the destination. Circuit-specific handlers live
// in circuit.go; the address resolution helpers here are shared.

// handleApp dispatches WCL messages arriving over nylon.
func (w *WCL) handleApp(src transport.Endpoint, payload []byte) {
	if len(payload) == 0 {
		return
	}
	r := wire.NewReader(payload)
	switch r.U8() {
	case msgForward:
		m, err := decodeForward(r)
		if err != nil {
			return
		}
		w.handleForward(src, m)
	case msgAck:
		pathID := r.U64()
		if r.Err() != nil {
			return
		}
		w.handleAck(pathID)
	case msgCircSetup:
		m, err := decodeCircSetup(r)
		if err != nil {
			return
		}
		w.handleCircSetup(src, m)
	case msgCircAck:
		circID := r.U64()
		if r.Err() != nil {
			return
		}
		w.handleCircAck(circID)
	case msgCircData:
		m, err := decodeCircData(r)
		if err != nil {
			return
		}
		w.handleCircData(m)
	case msgCircCellAck:
		circID, seq := r.U64(), r.U64()
		if r.Err() != nil {
			return
		}
		w.handleCircCellAck(circID, seq)
	case msgCircClose:
		circID := r.U64()
		if r.Err() != nil {
			return
		}
		w.handleCircClose(circID)
	case msgCircStreamAck:
		m, err := decodeStreamAck(r)
		if err != nil {
			return
		}
		w.handleCircStreamAck(m)
	}
}

// handleForward peels one onion layer and forwards, or delivers when
// this node is the destination.
func (w *WCL) handleForward(src transport.Endpoint, m *forwardMsg) {
	// Exact duplicates (network duplication, replayed datagrams) are
	// suppressed before the expensive peel. The key folds in an onion
	// digest so retry attempts of the same path — same pathID, fresh
	// onion — still pass. If this node already delivered the path as its
	// exit hop, the duplicate means the forward outran our ack (or the
	// ack was lost), so answer it again instead of staying silent.
	if w.seenForwards.Add(m.PathID ^ fnvSum(m.Onion)) {
		w.met.dupForwards.Inc()
		if w.deliveredPaths.Contains(m.PathID) {
			w.sendAckBack(m.PathID)
		}
		return
	}
	start := time.Now()
	next, inner, exit, err := crypt.Peel(w.cpu, w.node.Identity().Key, m.Onion)
	peelTime := time.Since(start)
	w.met.peelMS.ObserveDuration(peelTime)
	w.Trace.Emit(obs.KindPeel, w.rt.Now(), peelTime, len(m.Onion), m.PathID)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	w.met.forwardsPeeled.Inc()
	// Remember how to route the acknowledgement backwards.
	w.pruneAckState()
	w.ackState[m.PathID] = ackEntry{
		fromID:  m.From,
		via:     reverseIDs(m.ViaPath),
		direct:  src,
		expires: w.rt.Now() + w.cfg.AckTTL,
	}
	if exit {
		// A later attempt of a path this node already delivered (the
		// source retried because the first ack was slow or lost): ack
		// again, but deliver the plaintext exactly once.
		if w.deliveredPaths.Contains(m.PathID) {
			w.met.dupDeliveries.Inc()
			w.sendAckBack(m.PathID)
			return
		}
		// inner is the content key k.
		pt, err := crypt.OpenSym(w.cpu, inner, m.Content)
		if err != nil {
			w.met.peelErrors.Inc()
			return
		}
		w.deliveredPaths.Add(m.PathID)
		w.met.delivered.Inc()
		w.Trace.Emit(obs.KindDeliver, w.rt.Now(), 0, len(pt), m.PathID)
		if w.OnReceive != nil {
			w.OnReceive(pt)
		}
		w.sendAckBack(m.PathID)
		return
	}
	addr, err := decodeHopAddr(next)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	fwd := forwardMsg{PathID: m.PathID, From: w.node.ID(), Onion: inner, Content: m.Content}
	switch addr.kind {
	case addrByEndpoint:
		// The A→B hop: B is a P-node, no setup needed.
		w.node.SendAppDirect(addr.ep, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.PathID)
	case addrByID:
		// The B→D hop: rides the warm route from B's recent gossip
		// exchange with D.
		d, via, ok := w.routeToID(addr.id)
		if !ok {
			w.met.dropNoContact.Inc()
			return
		}
		fwd.ViaPath = via
		w.node.SendAppVia(d, via, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.PathID)
	}
}

// routeToID resolves a warm route to a node known only by ID. If the
// direct association has gone cold, the backlog's remembered descriptor
// (from the gossip exchange that made this node a helper for the
// target) and then the PSS view (the Nylon invariant) serve as
// fallbacks. Both one-shot forwards and circuit cells resolve the exit
// hop through here, so a route refreshed by gossip benefits either.
func (w *WCL) routeToID(id identity.NodeID) (nylon.Descriptor, []identity.NodeID, bool) {
	d := nylon.Descriptor{ID: id}
	via, ok := w.node.RouteTo(d)
	if !ok {
		for _, be := range w.cb.Entries() {
			if be.Desc.ID == id {
				d = be.Desc
				via, ok = w.node.RouteTo(d)
				break
			}
		}
	}
	if !ok {
		if vd, have := w.node.ViewDescriptor(id); have {
			d = vd
			via, ok = w.node.RouteTo(d)
		}
	}
	return d, via, ok
}

// fnvSum digests an onion blob for the duplicate-forward key. FNV-1a is
// plenty here: the key only gates a bounded suppression window, and a
// (pathID, digest) collision merely drops one datagram — the retry
// machinery absorbs that like any network loss.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func reverseIDs(ids []identity.NodeID) []identity.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]identity.NodeID, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}
