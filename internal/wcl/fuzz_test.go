package wcl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
)

func newBareWCL(t testing.TB) *WCL {
	t.Helper()
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	ident := &identity.Identity{ID: 1, Key: identity.TestKeys(1)[0]}
	node := nylon.NewNode(simtr.New(s, nw), ident, 0, netem.Endpoint{IP: 5, Port: 1}, nil,
		nylon.Config{KeySampling: true, KeyBlobSize: 256})
	w, err := New(node, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestHandleAppNeverPanics floods the WCL dispatcher with arbitrary app
// payloads: corrupted onions, bogus acks, truncated frames.
func TestHandleAppNeverPanics(t *testing.T) {
	w := newBareWCL(t)
	src := netem.Endpoint{IP: 9, Port: 9}
	f := func(payload []byte) bool {
		w.handleApp(src, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Fatal(err)
	}
	// Tagged garbage exercising the typed decoders.
	rng := rand.New(rand.NewSource(45))
	for _, tag := range []uint8{msgForward, msgAck, 0, 0x7F} {
		for i := 0; i < 300; i++ {
			body := make([]byte, rng.Intn(300))
			rng.Read(body)
			w.handleApp(src, append([]byte{tag}, body...))
		}
	}
}

// TestForwardWithForeignOnion delivers a well-formed forward whose
// onion was built for someone else's key: the hop must drop it and
// count a peel error, leaking nothing.
func TestForwardWithForeignOnion(t *testing.T) {
	w := newBareWCL(t)
	foreign := identity.TestKeys(2)[1]
	k, err := crypt.NewSymKey()
	if err != nil {
		t.Fatal(err)
	}
	onion, err := crypt.BuildOnion(nil, []crypt.Hop{{Pub: foreign.Public()}}, k)
	if err != nil {
		t.Fatal(err)
	}
	m := forwardMsg{PathID: 7, From: 99, Onion: onion, Content: []byte("ct")}
	w.handleApp(netem.Endpoint{IP: 9, Port: 9}, m.encode())
	if w.Stats().PeelErrors != 1 {
		t.Fatalf("peel errors = %d, want 1", w.Stats().PeelErrors)
	}
	if w.Stats().Delivered != 0 || w.Stats().ForwardsPeeled != 0 {
		t.Fatal("foreign onion was processed")
	}
}
