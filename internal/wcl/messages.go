package wcl

import (
	"fmt"

	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// WCL message tags (inside nylon MsgApp payloads).
const (
	msgForward uint8 = iota + 1
	msgAck
	msgCircSetup
	msgCircAck
	msgCircData
	msgCircCellAck
	msgCircClose
)

// forwardMsg carries an onion and its content one WCL hop. The clear
// fields expose only what the receiving hop inherently knows: who the
// previous hop is (From) and how to send back to it (ViaPath, the nylon
// relays the hop transmission used) — needed so acknowledgements can
// retrace the path. No hop ever sees both endpoints: From is always the
// immediate neighbour, and the next hop is inside the onion.
type forwardMsg struct {
	PathID  uint64
	From    identity.NodeID
	ViaPath []identity.NodeID
	Onion   []byte
	Content []byte
}

func (m *forwardMsg) encode() []byte {
	w := wire.NewWriter(32 + len(m.Onion) + len(m.Content))
	w.U8(msgForward)
	w.U64(m.PathID)
	w.U64(uint64(m.From))
	w.U8(uint8(len(m.ViaPath)))
	for _, id := range m.ViaPath {
		w.U64(uint64(id))
	}
	w.Bytes32(m.Onion)
	w.Bytes32(m.Content)
	return w.Bytes()
}

func decodeForward(r *wire.Reader) (*forwardMsg, error) {
	m := &forwardMsg{}
	m.PathID = r.U64()
	m.From = identity.NodeID(r.U64())
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		m.ViaPath = append(m.ViaPath, identity.NodeID(r.U64()))
	}
	m.Onion = r.Bytes32()
	m.Content = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding forward: %w", err)
	}
	return m, nil
}

func encodeAck(pathID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgAck)
	w.U64(pathID)
	return w.Bytes()
}

// circSetupMsg carries a circuit setup onion one hop. It exposes the
// same clear fields as forwardMsg — previous hop and the relays of the
// hop transmission, needed for backward routing — plus the circuit
// identifier relays key their table entries on. The identifier is
// constant along the path, exactly like a one-shot pathID, so it adds
// no correlator the one-shot wire format does not already carry.
type circSetupMsg struct {
	CircID  uint64
	From    identity.NodeID
	ViaPath []identity.NodeID
	Onion   []byte
}

func (m *circSetupMsg) encode() []byte {
	w := wire.NewWriter(32 + len(m.Onion))
	w.U8(msgCircSetup)
	w.U64(m.CircID)
	w.U64(uint64(m.From))
	w.U8(uint8(len(m.ViaPath)))
	for _, id := range m.ViaPath {
		w.U64(uint64(id))
	}
	w.Bytes32(m.Onion)
	return w.Bytes()
}

func decodeCircSetup(r *wire.Reader) (*circSetupMsg, error) {
	m := &circSetupMsg{}
	m.CircID = r.U64()
	m.From = identity.NodeID(r.U64())
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		m.ViaPath = append(m.ViaPath, identity.NodeID(r.U64()))
	}
	m.Onion = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding circuit setup: %w", err)
	}
	return m, nil
}

// circDataMsg carries one sealed data cell. Deliberately minimal: no
// sender, no routing — a relay needs only its table entry, so the
// steady-state wire format exposes less than a one-shot forward does.
type circDataMsg struct {
	CircID uint64
	Seq    uint64
	Cell   []byte
}

func (m *circDataMsg) encode() []byte {
	w := wire.NewWriter(19 + len(m.Cell))
	w.U8(msgCircData)
	w.U64(m.CircID)
	w.U64(m.Seq)
	w.Bytes32(m.Cell)
	return w.Bytes()
}

func decodeCircData(r *wire.Reader) (*circDataMsg, error) {
	m := &circDataMsg{}
	m.CircID = r.U64()
	m.Seq = r.U64()
	m.Cell = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding circuit data: %w", err)
	}
	return m, nil
}

func encodeCircAck(circID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgCircAck)
	w.U64(circID)
	return w.Bytes()
}

func encodeCircCellAck(circID, seq uint64) []byte {
	w := wire.NewWriter(17)
	w.U8(msgCircCellAck)
	w.U64(circID)
	w.U64(seq)
	return w.Bytes()
}

func encodeCircClose(circID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgCircClose)
	w.U64(circID)
	return w.Bytes()
}

// Cell plaintext framing (the innermost layer a circuit exit opens):
// one type byte followed by the raw payload.
const (
	cellData uint8 = 1
	cellPing uint8 = 2
)

func encodeCellPayload(typ uint8, payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = typ
	copy(out[1:], payload)
	return out
}

func decodeCellPayload(b []byte) (typ uint8, payload []byte, ok bool) {
	if len(b) == 0 {
		return 0, nil, false
	}
	return b[0], b[1:], true
}

// Hop addressing blobs embedded inside onion layers. A mix learns its
// successor either as a raw endpoint (the next-to-last hop B, a P-node
// reachable without any setup) or as a node ID (the destination D,
// reachable through the warm route B keeps from their recent gossip).
const (
	addrByEndpoint uint8 = 1
	addrByID       uint8 = 2
)

func encodeAddrEndpoint(ep transport.Endpoint, id identity.NodeID) []byte {
	w := wire.NewWriter(15)
	w.U8(addrByEndpoint)
	w.U32(uint32(ep.IP))
	w.U16(ep.Port)
	w.U64(uint64(id))
	return w.Bytes()
}

func encodeAddrID(id identity.NodeID) []byte {
	w := wire.NewWriter(9)
	w.U8(addrByID)
	w.U64(uint64(id))
	return w.Bytes()
}

type hopAddr struct {
	kind uint8
	ep   transport.Endpoint
	id   identity.NodeID
}

func decodeHopAddr(blob []byte) (hopAddr, error) {
	r := wire.NewReader(blob)
	var a hopAddr
	a.kind = r.U8()
	switch a.kind {
	case addrByEndpoint:
		a.ep = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
		a.id = identity.NodeID(r.U64())
	case addrByID:
		a.id = identity.NodeID(r.U64())
	default:
		return a, fmt.Errorf("wcl: unknown hop address kind %d", a.kind)
	}
	if err := r.Err(); err != nil {
		return a, fmt.Errorf("wcl: decoding hop address: %w", err)
	}
	return a, nil
}
