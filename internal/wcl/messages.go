package wcl

import (
	"fmt"

	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// WCL message tags (inside nylon MsgApp payloads).
const (
	msgForward uint8 = iota + 1
	msgAck
	msgCircSetup
	msgCircAck
	msgCircData
	msgCircCellAck
	msgCircClose
	msgCircStreamAck
)

// forwardMsg carries an onion and its content one WCL hop. The clear
// fields expose only what the receiving hop inherently knows: who the
// previous hop is (From) and how to send back to it (ViaPath, the nylon
// relays the hop transmission used) — needed so acknowledgements can
// retrace the path. No hop ever sees both endpoints: From is always the
// immediate neighbour, and the next hop is inside the onion.
type forwardMsg struct {
	PathID  uint64
	From    identity.NodeID
	ViaPath []identity.NodeID
	Onion   []byte
	Content []byte
}

func (m *forwardMsg) encode() []byte {
	w := wire.NewWriter(32 + len(m.Onion) + len(m.Content))
	w.U8(msgForward)
	w.U64(m.PathID)
	w.U64(uint64(m.From))
	w.U8(uint8(len(m.ViaPath)))
	for _, id := range m.ViaPath {
		w.U64(uint64(id))
	}
	w.Bytes32(m.Onion)
	w.Bytes32(m.Content)
	return w.Bytes()
}

func decodeForward(r *wire.Reader) (*forwardMsg, error) {
	m := &forwardMsg{}
	m.PathID = r.U64()
	m.From = identity.NodeID(r.U64())
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		m.ViaPath = append(m.ViaPath, identity.NodeID(r.U64()))
	}
	m.Onion = r.Bytes32()
	m.Content = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding forward: %w", err)
	}
	return m, nil
}

func encodeAck(pathID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgAck)
	w.U64(pathID)
	return w.Bytes()
}

// circSetupMsg carries a circuit setup onion one hop. It exposes the
// same clear fields as forwardMsg — previous hop and the relays of the
// hop transmission, needed for backward routing — plus the circuit
// identifier relays key their table entries on. The identifier is
// constant along the path, exactly like a one-shot pathID, so it adds
// no correlator the one-shot wire format does not already carry.
type circSetupMsg struct {
	CircID  uint64
	From    identity.NodeID
	ViaPath []identity.NodeID
	Onion   []byte
}

func (m *circSetupMsg) encode() []byte {
	w := wire.NewWriter(32 + len(m.Onion))
	w.U8(msgCircSetup)
	w.U64(m.CircID)
	w.U64(uint64(m.From))
	w.U8(uint8(len(m.ViaPath)))
	for _, id := range m.ViaPath {
		w.U64(uint64(id))
	}
	w.Bytes32(m.Onion)
	return w.Bytes()
}

func decodeCircSetup(r *wire.Reader) (*circSetupMsg, error) {
	m := &circSetupMsg{}
	m.CircID = r.U64()
	m.From = identity.NodeID(r.U64())
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		m.ViaPath = append(m.ViaPath, identity.NodeID(r.U64()))
	}
	m.Onion = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding circuit setup: %w", err)
	}
	return m, nil
}

// circDataMsg carries one sealed data cell. Deliberately minimal: no
// sender, no routing — a relay needs only its table entry, so the
// steady-state wire format exposes less than a one-shot forward does.
type circDataMsg struct {
	CircID uint64
	Seq    uint64
	Cell   []byte
}

func (m *circDataMsg) encode() []byte {
	w := wire.NewWriter(19 + len(m.Cell))
	w.U8(msgCircData)
	w.U64(m.CircID)
	w.U64(m.Seq)
	w.Bytes32(m.Cell)
	return w.Bytes()
}

func decodeCircData(r *wire.Reader) (*circDataMsg, error) {
	m := &circDataMsg{}
	m.CircID = r.U64()
	m.Seq = r.U64()
	m.Cell = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding circuit data: %w", err)
	}
	return m, nil
}

func encodeCircAck(circID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgCircAck)
	w.U64(circID)
	return w.Bytes()
}

func encodeCircCellAck(circID, seq uint64) []byte {
	w := wire.NewWriter(17)
	w.U8(msgCircCellAck)
	w.U64(circID)
	w.U64(seq)
	return w.Bytes()
}

func encodeCircClose(circID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgCircClose)
	w.U64(circID)
	return w.Bytes()
}

// Cell plaintext framing (the innermost layer a circuit exit opens):
// one type byte followed by the raw payload. cellStream payloads carry
// the stream-fragment sub-frame below.
const (
	cellData   uint8 = 1
	cellPing   uint8 = 2
	cellStream uint8 = 3
)

func encodeCellPayload(typ uint8, payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = typ
	copy(out[1:], payload)
	return out
}

func decodeCellPayload(b []byte) (typ uint8, payload []byte, ok bool) {
	if len(b) == 0 {
		return 0, nil, false
	}
	return b[0], b[1:], true
}

// maxStreamFrags bounds the fragments of one stream message. Together
// with the fragment size it caps what a single SendStream can carry
// (64 Ki fragments at the 1 KiB default = 64 MiB) and what a receiver
// will ever allocate reassembly bookkeeping for.
const maxStreamFrags = 1 << 16

// DefaultStreamFragSize is the default Config.StreamFragSize: the
// payload bytes carried by one stream fragment cell. Exported so
// experiments can chunk comparison transports identically.
const DefaultStreamFragSize = 1024

// streamFrag is the plaintext sub-frame inside a cellStream cell: which
// message the fragment belongs to (the per-circuit stream ID), its
// position, and the total fragment count (carried by every fragment so
// the receiver can set up reassembly from any arrival order).
type streamFrag struct {
	StreamID  uint64
	Frag      uint32
	FragCount uint32
	Data      []byte
}

func (f *streamFrag) encode() []byte {
	w := wire.NewWriter(16 + len(f.Data))
	w.U64(f.StreamID)
	w.U32(f.Frag)
	w.U32(f.FragCount)
	w.Raw(f.Data)
	return w.Bytes()
}

func decodeStreamFrag(b []byte) (streamFrag, error) {
	r := wire.NewReader(b)
	var f streamFrag
	f.StreamID = r.U64()
	f.Frag = r.U32()
	f.FragCount = r.U32()
	f.Data = r.Rest()
	if err := r.Err(); err != nil {
		return f, fmt.Errorf("wcl: decoding stream fragment: %w", err)
	}
	if f.FragCount == 0 || f.FragCount > maxStreamFrags {
		return f, fmt.Errorf("wcl: stream fragment count %d out of range", f.FragCount)
	}
	if f.Frag >= f.FragCount {
		return f, fmt.Errorf("wcl: stream fragment index %d >= count %d", f.Frag, f.FragCount)
	}
	return f, nil
}

// streamAckMsg travels backwards along the circuit, like a cell ack,
// and acknowledges stream fragments cumulatively plus selectively: every
// fragment below Cum has arrived, and bit k of Bits reports fragment
// Cum+1+k. It exposes (circID, streamID, positions) to relays on the
// backward path — the same class of cleartext sequencing information the
// per-cell acks already carry.
type streamAckMsg struct {
	CircID   uint64
	StreamID uint64
	Cum      uint32
	Bits     uint64
}

func (m *streamAckMsg) encode() []byte {
	w := wire.NewWriter(29)
	w.U8(msgCircStreamAck)
	w.U64(m.CircID)
	w.U64(m.StreamID)
	w.U32(m.Cum)
	w.U64(m.Bits)
	return w.Bytes()
}

func decodeStreamAck(r *wire.Reader) (streamAckMsg, error) {
	var m streamAckMsg
	m.CircID = r.U64()
	m.StreamID = r.U64()
	m.Cum = r.U32()
	m.Bits = r.U64()
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("wcl: decoding stream ack: %w", err)
	}
	return m, nil
}

// Hop addressing blobs embedded inside onion layers. A mix learns its
// successor either as a raw endpoint (the next-to-last hop B, a P-node
// reachable without any setup) or as a node ID (the destination D,
// reachable through the warm route B keeps from their recent gossip).
const (
	addrByEndpoint uint8 = 1
	addrByID       uint8 = 2
)

func encodeAddrEndpoint(ep transport.Endpoint, id identity.NodeID) []byte {
	w := wire.NewWriter(15)
	w.U8(addrByEndpoint)
	w.U32(uint32(ep.IP))
	w.U16(ep.Port)
	w.U64(uint64(id))
	return w.Bytes()
}

func encodeAddrID(id identity.NodeID) []byte {
	w := wire.NewWriter(9)
	w.U8(addrByID)
	w.U64(uint64(id))
	return w.Bytes()
}

type hopAddr struct {
	kind uint8
	ep   transport.Endpoint
	id   identity.NodeID
}

func decodeHopAddr(blob []byte) (hopAddr, error) {
	r := wire.NewReader(blob)
	var a hopAddr
	a.kind = r.U8()
	switch a.kind {
	case addrByEndpoint:
		a.ep = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
		a.id = identity.NodeID(r.U64())
	case addrByID:
		a.id = identity.NodeID(r.U64())
	default:
		return a, fmt.Errorf("wcl: unknown hop address kind %d", a.kind)
	}
	if err := r.Err(); err != nil {
		return a, fmt.Errorf("wcl: decoding hop address: %w", err)
	}
	return a, nil
}
