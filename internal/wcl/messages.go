package wcl

import (
	"fmt"

	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// WCL message tags (inside nylon MsgApp payloads).
const (
	msgForward uint8 = iota + 1
	msgAck
)

// forwardMsg carries an onion and its content one WCL hop. The clear
// fields expose only what the receiving hop inherently knows: who the
// previous hop is (From) and how to send back to it (ViaPath, the nylon
// relays the hop transmission used) — needed so acknowledgements can
// retrace the path. No hop ever sees both endpoints: From is always the
// immediate neighbour, and the next hop is inside the onion.
type forwardMsg struct {
	PathID  uint64
	From    identity.NodeID
	ViaPath []identity.NodeID
	Onion   []byte
	Content []byte
}

func (m *forwardMsg) encode() []byte {
	w := wire.NewWriter(32 + len(m.Onion) + len(m.Content))
	w.U8(msgForward)
	w.U64(m.PathID)
	w.U64(uint64(m.From))
	w.U8(uint8(len(m.ViaPath)))
	for _, id := range m.ViaPath {
		w.U64(uint64(id))
	}
	w.Bytes32(m.Onion)
	w.Bytes32(m.Content)
	return w.Bytes()
}

func decodeForward(r *wire.Reader) (*forwardMsg, error) {
	m := &forwardMsg{}
	m.PathID = r.U64()
	m.From = identity.NodeID(r.U64())
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		m.ViaPath = append(m.ViaPath, identity.NodeID(r.U64()))
	}
	m.Onion = r.Bytes32()
	m.Content = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wcl: decoding forward: %w", err)
	}
	return m, nil
}

func encodeAck(pathID uint64) []byte {
	w := wire.NewWriter(9)
	w.U8(msgAck)
	w.U64(pathID)
	return w.Bytes()
}

// Hop addressing blobs embedded inside onion layers. A mix learns its
// successor either as a raw endpoint (the next-to-last hop B, a P-node
// reachable without any setup) or as a node ID (the destination D,
// reachable through the warm route B keeps from their recent gossip).
const (
	addrByEndpoint uint8 = 1
	addrByID       uint8 = 2
)

func encodeAddrEndpoint(ep transport.Endpoint, id identity.NodeID) []byte {
	w := wire.NewWriter(15)
	w.U8(addrByEndpoint)
	w.U32(uint32(ep.IP))
	w.U16(ep.Port)
	w.U64(uint64(id))
	return w.Bytes()
}

func encodeAddrID(id identity.NodeID) []byte {
	w := wire.NewWriter(9)
	w.U8(addrByID)
	w.U64(uint64(id))
	return w.Bytes()
}

type hopAddr struct {
	kind uint8
	ep   transport.Endpoint
	id   identity.NodeID
}

func decodeHopAddr(blob []byte) (hopAddr, error) {
	r := wire.NewReader(blob)
	var a hopAddr
	a.kind = r.U8()
	switch a.kind {
	case addrByEndpoint:
		a.ep = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
		a.id = identity.NodeID(r.U64())
	case addrByID:
		a.id = identity.NodeID(r.U64())
	default:
		return a, fmt.Errorf("wcl: unknown hop address kind %d", a.kind)
	}
	if err := r.Err(); err != nil {
		return a, fmt.Errorf("wcl: decoding hop address: %w", err)
	}
	return a, nil
}
