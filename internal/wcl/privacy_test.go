package wcl_test

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"whisper/internal/obs"
	"whisper/internal/wcl"
)

// TestEventFieldAllowlist pins the exact field set of obs.Event. The
// relay-visibility rule says a trace event may carry only what a node
// can locally observe; any new field widens every relay's telemetry
// and must argue its privacy case by editing this allowlist. In
// particular, head-based trace sampling (obs.Tracer.SetHeadSampling)
// must stay a source-local memory: no "sampled" bit may appear here —
// or on the wire — because a per-path flag relays could read is a
// per-path correlator.
func TestEventFieldAllowlist(t *testing.T) {
	allow := map[string]string{
		"Span":  "obs.SpanID",    // node-local, restarts per node
		"Kind":  "obs.Kind",      // event class
		"At":    "time.Duration", // local clock
		"Dur":   "time.Duration", // local processing cost
		"Bytes": "int",           // local message size
	}
	typ := reflect.TypeOf(obs.Event{})
	if typ.NumField() != len(allow) {
		t.Fatalf("obs.Event has %d fields, allowlist has %d — a new field reached relay telemetry",
			typ.NumField(), len(allow))
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		want, ok := allow[f.Name]
		if !ok {
			t.Fatalf("obs.Event.%s is not in the relay-visibility allowlist", f.Name)
		}
		if got := f.Type.String(); got != want {
			t.Fatalf("obs.Event.%s is %s, allowlist says %s", f.Name, got, want)
		}
	}
}

// relaySink is what a real deployment may attach to a node: a plain
// obs.Collector. It deliberately does NOT implement RecordCorrelated,
// so the tracer (by type assertion) can never hand it a path ID.
type relaySink struct {
	events map[uint64][]obs.Event // node -> its events
}

func (r *relaySink) Record(node uint64, ev obs.Event) {
	r.events[node] = append(r.events[node], ev)
}

// TestRelayTraceUnlinkable drives confidential traffic through a
// converged network with every node's tracer attached to one shared
// plain collector — an adversary that has compromised the telemetry of
// every relay at once — and verifies the recorded fields cannot link a
// route's source to its destination. The second half attaches the
// sim-only CorrelatingCollector as a positive control: with the
// correlation key the same traffic IS fully linkable, proving the
// privacy property lives in the event schema, not in weak traffic.
func TestRelayTraceUnlinkable(t *testing.T) {
	w := buildWCLWorld(t, 29, 120)
	natted := w.LiveNatted()

	sink := &relaySink{events: map[uint64][]obs.Event{}}
	for _, n := range w.Live() {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), sink)
	}

	const sends = 12
	done := 0
	for i := 0; i < sends; i++ {
		s := natted[i%len(natted)]
		d := natted[(i+11)%len(natted)]
		if s == d {
			continue
		}
		dest := destFor(w, d, 3)
		s.WCL.Send(dest, []byte("confidential"), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				done++
			}
		})
	}
	w.Sim.RunFor(time.Minute)
	if done < sends/2 {
		t.Fatalf("only %d/%d sends succeeded; traffic too thin to test linkability", done, sends)
	}

	// The adversary did observe the traffic: forwards and peels were
	// recorded on nodes other than the sources.
	kinds := map[obs.Kind]int{}
	for _, evs := range sink.events {
		for _, ev := range evs {
			kinds[ev.Kind]++
		}
	}
	if kinds[obs.KindForward] == 0 || kinds[obs.KindPeel] == 0 || kinds[obs.KindDeliver] == 0 {
		t.Fatalf("trace did not capture relay activity: %v", kinds)
	}

	// Span IDs are node-local monotonic counters: every active node
	// emits span 1, 2, 3... — so the same span values recur across
	// nodes and cannot act as a global correlator. Require the
	// collision to actually occur, and numbering to restart at 1.
	spanOwners := map[obs.SpanID]int{}
	for node, evs := range sink.events {
		minSpan := obs.SpanID(1 << 62)
		seen := map[obs.SpanID]bool{}
		for _, ev := range evs {
			if ev.Span < minSpan {
				minSpan = ev.Span
			}
			seen[ev.Span] = true
		}
		if minSpan != 1 {
			t.Fatalf("node %d's spans start at %d, want 1 (numbering must restart per node)", node, minSpan)
		}
		for sp := range seen {
			spanOwners[sp]++
		}
	}
	collisions := 0
	for _, owners := range spanOwners {
		if owners >= 2 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Fatal("no span value recurs across nodes — spans look globally unique, which would link hops")
	}

	// Positive control: the omniscient CorrelatingCollector sees the
	// same schema plus the correlation key, and full paths fall out.
	cc := &obs.CorrelatingCollector{}
	for _, n := range w.Live() {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), cc)
	}
	s, d := natted[3], natted[17]
	var res *wcl.Result
	s.WCL.Send(destFor(w, d, 3), []byte("controlled"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(30 * time.Second)
	if res == nil || res.Outcome == wcl.Failed {
		t.Fatalf("control send failed: %+v", res)
	}
	paths := cc.Paths()
	if len(paths) == 0 {
		t.Fatal("correlating collector saw no paths")
	}
	// The delivered path's timeline crosses several nodes: source send,
	// relay peels/forwards, destination deliver — the exact linkage the
	// plain collector must never enable.
	linked := false
	for _, p := range paths {
		tl := cc.Timeline(p)
		nodes := map[uint64]bool{}
		hasSend, hasDeliver := false, false
		for _, ev := range tl {
			nodes[ev.Node] = true
			hasSend = hasSend || ev.Kind == obs.KindSend
			hasDeliver = hasDeliver || ev.Kind == obs.KindDeliver
		}
		if hasSend && hasDeliver && len(nodes) >= 3 {
			linked = true
			// The timeline is ordered: the send cannot come after the
			// delivery.
			at := make([]time.Duration, 0, len(tl))
			for _, ev := range tl {
				at = append(at, ev.At)
			}
			if !sort.SliceIsSorted(at, func(i, j int) bool { return at[i] < at[j] }) {
				t.Fatal("timeline not time-ordered")
			}
			if cc.FormatTimeline(p) == "" {
				t.Fatal("empty timeline rendering")
			}
		}
	}
	if !linked {
		t.Fatal("omniscient observer failed to reconstruct any full path — positive control broken")
	}
}

// TestCircuitRelayTraceUnlinkable extends the relay-trace property
// across a full circuit lifetime: setup, a stream of data cells,
// rotation, teardown. A plain collector compromised on every relay of
// an established circuit sees forwards, peels and cell forwards — but
// nothing in the recorded schema links the circuit's source to its
// destination, because circuit IDs never reach a plain Collector and
// span numbering restarts on every node. The positive control shows
// the sim-only correlating collector CAN reconstruct the whole circuit
// lifetime from the same traffic, so the protection is the schema.
func TestCircuitRelayTraceUnlinkable(t *testing.T) {
	w := buildCircuitWorld(t, 51, 120, wcl.Config{CircuitMaxCells: 8})
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]

	sink := &relaySink{events: map[uint64][]obs.Event{}}
	for _, n := range w.Live() {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), sink)
	}

	// A full lifetime: enough cells to cross the rotation budget.
	const sends = 20
	ok := 0
	for i := 0; i < sends; i++ {
		s.WCL.SendCircuit(destFor(w, d, 3), []byte("circuit-confidential"), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)
	if ok < sends-1 {
		t.Fatalf("only %d/%d circuit sends succeeded", ok, sends)
	}
	if s.WCL.Stats().CircuitsRotated == 0 {
		t.Fatal("lifetime did not cross a rotation — test covers less than intended")
	}

	// The adversary observed the circuit machinery at work...
	kinds := map[obs.Kind]int{}
	for _, evs := range sink.events {
		for _, ev := range evs {
			kinds[ev.Kind]++
		}
	}
	if kinds[obs.KindCellForward] == 0 || kinds[obs.KindCellDeliver] == 0 || kinds[obs.KindPeel] == 0 {
		t.Fatalf("trace did not capture circuit relay activity: %v", kinds)
	}

	// ...but no recorded value is a cross-node correlator: spans restart
	// at 1 on every node and recur across nodes, exactly like the
	// one-shot case, over the whole lifetime of the circuit.
	spanOwners := map[obs.SpanID]int{}
	for node, evs := range sink.events {
		minSpan := obs.SpanID(1 << 62)
		for _, ev := range evs {
			if ev.Span < minSpan {
				minSpan = ev.Span
			}
			if ev.Span > obs.SpanID(len(evs)) {
				t.Fatalf("node %d span %d exceeds its own event count — spans leak global state", node, ev.Span)
			}
		}
		if minSpan != 1 {
			t.Fatalf("node %d's spans start at %d, want 1", node, minSpan)
		}
		seen := map[obs.SpanID]bool{}
		for _, ev := range evs {
			seen[ev.Span] = true
		}
		for sp := range seen {
			spanOwners[sp]++
		}
	}
	collisions := 0
	for _, owners := range spanOwners {
		if owners >= 2 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Fatal("no span value recurs across nodes during the circuit lifetime")
	}

	// Positive control: the omniscient observer links the whole circuit
	// lifetime — source cell sends, relay cell forwards, exit deliveries
	// — under one correlation key.
	cc := &obs.CorrelatingCollector{}
	for _, n := range w.Live() {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), cc)
	}
	s2, d2 := natted[3], natted[4]
	const controlSends = 6
	okCtl := 0
	for i := 0; i < controlSends; i++ {
		s2.WCL.SendCircuit(destFor(w, d2, 3), []byte("controlled"), func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				okCtl++
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)
	if okCtl < controlSends-1 {
		t.Fatalf("control sends failed: %d/%d", okCtl, controlSends)
	}
	linked := false
	for _, p := range cc.Paths() {
		tl := cc.Timeline(p)
		nodes := map[uint64]bool{}
		hasCellSend, hasCellDeliver, hasCellForward := false, false, false
		for _, ev := range tl {
			nodes[ev.Node] = true
			hasCellSend = hasCellSend || ev.Kind == obs.KindCellSend
			hasCellDeliver = hasCellDeliver || ev.Kind == obs.KindCellDeliver
			hasCellForward = hasCellForward || ev.Kind == obs.KindCellForward
		}
		if hasCellSend && hasCellForward && hasCellDeliver && len(nodes) >= 3 {
			linked = true
		}
	}
	if !linked {
		t.Fatal("omniscient observer failed to reconstruct a circuit lifetime — positive control broken")
	}
}
