package wcl

import (
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
)

// Source-side one-shot path engine: every Send pays full path
// selection and onion construction. Streams that re-contact the same
// destination should ride the circuit layer instead (circuit.go),
// which also uses this engine as its retry fallback.

type pendingSend struct {
	pathID   uint64
	dest     Dest
	content  []byte // AES-GCM under k
	key      []byte // k
	payload  []byte
	start    time.Duration
	attempts int
	triedA   map[identity.NodeID]bool
	triedB   map[identity.NodeID]bool
	timer    transport.Timer
	done     func(Result)
}

// Send opens a confidential one-way route to dest and delivers payload
// over it. done (optional) receives the final Result. Content privacy
// comes from the AES encryption under a fresh key k; relationship
// anonymity from the onion path S → A → B → dest. When Config.Circuits
// is set the send rides the circuit layer instead (one-shot remains
// the fallback there).
func (w *WCL) Send(dest Dest, payload []byte, done func(Result)) {
	if w.cfg.Circuits {
		w.SendCircuit(dest, payload, done)
		return
	}
	w.sendOneShot(dest, payload, done)
}

func (w *WCL) sendOneShot(dest Dest, payload []byte, done func(Result)) {
	w.met.sent.Inc()
	if dest.Key == nil {
		w.failEarly(done)
		return
	}
	k, err := crypt.NewSymKey()
	if err != nil {
		w.failEarly(done)
		return
	}
	content, err := crypt.SealSym(w.cpu, k, payload)
	if err != nil {
		w.failEarly(done)
		return
	}
	st := &pendingSend{
		pathID:  w.newPathID(),
		dest:    dest,
		content: content,
		key:     k,
		payload: payload,
		start:   w.rt.Now(),
		triedA:  make(map[identity.NodeID]bool),
		triedB:  make(map[identity.NodeID]bool),
		done:    done,
	}
	w.pending[st.pathID] = st
	w.attempt(st)
}

// failEarly reports a send that failed before any path state existed:
// no path ID was drawn, no attempt launched, no trace event emitted.
// The throwaway state's zero pathID keeps finishResult's ownership
// guard from touching any live entry, and its fresh start keeps
// Elapsed at zero. Exactly one Result reaches done and OnResult.
func (w *WCL) failEarly(done func(Result)) {
	w.finishResult(&pendingSend{done: done, start: w.rt.Now()}, Failed, true)
}

// newPathID draws a fresh path identifier. Zero is reserved (it is the
// pathID of the throwaway state used for sends that fail before a path
// exists), and identifiers of in-flight sends are skipped so a
// collision cannot alias two pending entries.
func (w *WCL) newPathID() uint64 {
	for {
		id := w.rt.Rand().Uint64()
		if id == 0 {
			continue
		}
		if _, inFlight := w.pending[id]; inFlight {
			continue
		}
		return id
	}
}

// pickMixes chooses an untried (A, B) pair plus any extra middle
// mixes: A from the connection backlog (any node with a known key), B
// from the destination's helper set (or, for destinations that are
// themselves P-nodes, any P-node of the backlog), middles from the
// backlog's P-nodes. triedA/triedB carry the combinations already
// spent (one-shot attempts and circuit setups share this engine).
// Returns false when no untried combination remains.
func (w *WCL) pickMixes(dest Dest, triedA, triedB map[identity.NodeID]bool) (a nylon.Descriptor, middles []Helper, b Helper, ok bool) {
	rng := w.rt.Rand()
	exclude := map[identity.NodeID]bool{w.node.ID(): true, dest.ID: true}

	helpers := dest.Helpers
	if len(helpers) == 0 {
		// P-node destination: any backlog P-node with a known key works.
		for _, e := range w.cb.Publics() {
			if key := w.node.Keys().Get(e.Desc.ID); key != nil {
				helpers = append(helpers, Helper{ID: e.Desc.ID, Endpoint: e.Desc.Contact, Key: key})
			}
		}
	}
	var bs []Helper
	for _, h := range helpers {
		if h.Key != nil && !triedB[h.ID] && !exclude[h.ID] {
			bs = append(bs, h)
		}
	}
	// First mix: random entry from the freshest half of the backlog
	// (the most recently opened routes are the most likely to still be
	// warm under churn) with a known key. Prefer untried; fall back to
	// a previously tried A when fresh helpers remain, then to the
	// stale half.
	pickA := func(tried map[identity.NodeID]bool) (nylon.Descriptor, bool) {
		var fresh, stale []nylon.Descriptor
		entries := w.cb.Entries() // newest first
		for i, e := range entries {
			d := e.Desc
			if exclude[d.ID] || (tried != nil && tried[d.ID]) {
				continue
			}
			if w.node.Keys().Get(d.ID) == nil {
				continue
			}
			if i < (len(entries)+1)/2 {
				fresh = append(fresh, d)
			} else {
				stale = append(stale, d)
			}
		}
		if len(fresh) > 0 {
			return fresh[rng.Intn(len(fresh))], true
		}
		if len(stale) > 0 {
			return stale[rng.Intn(len(stale))], true
		}
		return nylon.Descriptor{}, false
	}

	if len(bs) == 0 {
		return a, nil, b, false
	}
	b = bs[rng.Intn(len(bs))]
	if a, ok = pickA(triedA); !ok {
		a, ok = pickA(nil) // reuse a tried A with a fresh B
	}
	if ok && a.ID == b.ID {
		// Avoid A == B: rescue-scan for a different A, preferring ones
		// not yet tried so the attempt budget is not spent re-testing a
		// mix already known to fail (and MixesTried stays honest).
		rescue := func(skipTried bool) (nylon.Descriptor, bool) {
			for _, e := range w.cb.Entries() {
				d := e.Desc
				if d.ID == b.ID || exclude[d.ID] || (skipTried && triedA[d.ID]) {
					continue
				}
				if w.node.Keys().Get(d.ID) == nil {
					continue
				}
				return d, true
			}
			return nylon.Descriptor{}, false
		}
		var found bool
		if a, found = rescue(true); !found {
			a, found = rescue(false)
		}
		if !found {
			return a, nil, b, false
		}
	}
	if !ok {
		return a, nil, b, false
	}
	// Extra middle mixes for longer paths: P-nodes from the backlog,
	// distinct from everything already on the path.
	if extra := w.cfg.Mixes - 2; extra > 0 {
		used := map[identity.NodeID]bool{a.ID: true, b.ID: true, dest.ID: true, w.node.ID(): true}
		for _, e := range w.cb.Publics() {
			if len(middles) == extra {
				break
			}
			d := e.Desc
			if used[d.ID] || d.Contact.IsZero() {
				continue
			}
			key := w.node.Keys().Get(d.ID)
			if key == nil {
				continue
			}
			used[d.ID] = true
			middles = append(middles, Helper{ID: d.ID, Endpoint: d.Contact, Key: key})
		}
		if len(middles) < extra {
			return a, nil, b, false // not enough distinct P-nodes yet
		}
		rng.Shuffle(len(middles), func(i, j int) { middles[i], middles[j] = middles[j], middles[i] })
	}
	return a, middles, b, true
}

// attempt constructs and launches one onion path for st.
func (w *WCL) attempt(st *pendingSend) {
	a, middles, b, ok := w.pickMixes(st.dest, st.triedA, st.triedB)
	if !ok {
		w.finishResult(st, Failed, true)
		return
	}
	st.attempts++
	st.triedA[a.ID] = true
	st.triedB[b.ID] = true

	aKey := w.node.Keys().Get(a.ID)
	dAddr := encodeAddrID(st.dest.ID)
	if !st.dest.Endpoint.IsZero() {
		dAddr = encodeAddrEndpoint(st.dest.Endpoint, st.dest.ID)
	}
	hops := make([]crypt.Hop, 0, w.cfg.Mixes+1)
	hops = append(hops, crypt.Hop{Pub: aKey})
	for _, m := range middles {
		hops = append(hops, crypt.Hop{Pub: m.Key, Addr: encodeAddrEndpoint(m.Endpoint, m.ID)})
	}
	hops = append(hops, crypt.Hop{Pub: b.Key, Addr: encodeAddrEndpoint(b.Endpoint, b.ID)})
	hops = append(hops, crypt.Hop{Pub: st.dest.Key, Addr: dAddr})
	start := time.Now()
	onion, err := crypt.BuildOnion(w.cpu, hops, st.key)
	buildTime := time.Since(start)
	w.met.buildMS.ObserveDuration(buildTime)
	w.Trace.Emit(obs.KindSend, w.rt.Now(), buildTime, len(onion), st.pathID)
	if err != nil {
		w.retry(st)
		return
	}
	via, routable := w.node.RouteTo(a)
	if !routable {
		w.retry(st)
		return
	}
	fwd := forwardMsg{PathID: st.pathID, From: w.node.ID(), ViaPath: via, Onion: onion, Content: st.content}
	w.node.SendAppVia(a, via, fwd.encode())
	st.timer = w.rt.After(w.cfg.PathTimeout, func() {
		if _, live := w.pending[st.pathID]; live {
			w.retry(st)
		}
	})
}

// retry tries the next alternative or gives up.
func (w *WCL) retry(st *pendingSend) {
	if st.timer != nil {
		st.timer.Cancel()
	}
	if st.attempts >= w.cfg.MaxAttempts {
		w.finishResult(st, Failed, false)
		return
	}
	w.Trace.Emit(obs.KindRetry, w.rt.Now(), 0, 0, st.pathID)
	w.attempt(st)
}

func (w *WCL) finishResult(st *pendingSend, outcome Outcome, noAlt bool) {
	if st.timer != nil {
		st.timer.Cancel()
	}
	// Only remove the entry this exact send owns: early-failure sends
	// carry a throwaway state whose zero pathID must not evict (and a
	// stale timer must not double-finish) a live entry under that key.
	if cur, ok := w.pending[st.pathID]; ok && cur == st {
		delete(w.pending, st.pathID)
	}
	switch {
	case outcome == Success:
		w.met.firstTrySuccess.Inc()
	case outcome == AltSuccess:
		w.met.altSuccess.Inc()
	default:
		w.met.failed.Inc()
		if noAlt {
			w.met.noAltFailed.Inc()
		}
	}
	w.met.mixesTriedSum.Add(uint64(len(st.triedA)))
	w.met.helpersTriedSum.Add(uint64(len(st.triedB)))
	r := Result{
		Outcome:       outcome,
		NoAlternative: noAlt,
		Attempts:      st.attempts,
		MixesTried:    len(st.triedA),
		HelpersTried:  len(st.triedB),
		Elapsed:       w.rt.Now() - st.start,
	}
	w.met.elapsedMS.ObserveDuration(r.Elapsed)
	if w.OnResult != nil {
		w.OnResult(st.dest.ID, r)
	}
	if st.done != nil {
		st.done(r)
	}
}
