package wcl

import (
	"sort"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/obs"
	"whisper/internal/transport"
)

// The stream layer. Circuit.SendStream turns a circuit into a true
// stream transport for arbitrary-size payloads: the message is split
// into StreamFragSize fragments, each riding one data cell
// (cellStream), governed by a per-stream sliding send window with
// cumulative + selective acknowledgements (streamAckMsg). The exit
// reassembles and delivers the complete message exactly once.
//
// Reliability is the stream's own: fragment cells bypass the per-cell
// pendingCells tracking (the exit sends stream acks, not cell acks,
// for them), so the window — not a per-cell timer — paces the flow.
// A retransmission timer re-sends the unacknowledged tail in
// ascending fragment order; StreamRetries consecutive rounds without
// any acked progress declare the path broken and the whole message
// falls back to one one-shot send (same at-least-once caveat across
// catastrophic path failure as the cell layer's fallback). Karn's
// rule applies: retransmitted fragments never produce an RTT sample.
//
// Rotation-drain rule: a stream message is pinned to the circPath its
// first fragment used and always finishes there. Rotation (and path
// retirement generally) waits for pathDrained — no pending cells AND
// no pinned stream — so the exit's per-circuit (circID, seq) dedup
// always covers a whole message. New stream messages start only on a
// path that is not due for rotation.
//
// Backpressure: one stream is active per circuit; up to StreamQueueMax
// further messages queue behind it, and overflow is shed immediately
// with ErrStreamBacklog in Result.Err — bounded memory, explicit
// refusal, never silent unbounded buffering.

// streamRecvMax bounds the exit-side reassembly table (entries beyond
// it evict oldest-first, deterministically).
const streamRecvMax = 256

// streamDupAckThreshold is how many consecutive acknowledgements must
// report the same hole before it is fast-retransmitted (TCP's
// dup-ack rule: a single report is usually just ack reordering).
const streamDupAckThreshold = 3

// streamSend is the source-side state of one in-flight stream message.
type streamSend struct {
	c    *Circuit
	path *circPath // pinned at activation; the message finishes here

	id      uint64
	payload []byte
	frags   int

	sent   []bool // fragment ever launched
	acked  []bool
	retx   []bool          // retransmitted at least once (Karn: no RTT sample)
	sentAt []time.Duration // last launch time, for RTT samples

	cum      int // contiguous acked prefix length
	ackedN   int // total acked
	next     int // next never-sent fragment
	inflight int // launched, unacked (window + gauge occupancy)

	rounds   int           // consecutive timer rounds without progress
	progress bool          // acked progress since the last timer round
	fastRetx int           // hole index already fast-retransmitted (-1: none)
	holeAt   int           // hole index currently under observation
	holeSeen int           // consecutive acks that reported holeAt
	srtt     time.Duration // smoothed RTT from unretransmitted samples

	timer    transport.Timer
	start    time.Duration
	finished bool
	done     func(Result)
}

func (s *streamSend) fragData(i int, fragSize int) []byte {
	lo := i * fragSize
	hi := lo + fragSize
	if hi > len(s.payload) {
		hi = len(s.payload)
	}
	return s.payload[lo:hi]
}

// SendStream sends payload over the circuit as a fragmented,
// windowed, reliably-acknowledged stream message, reassembled and
// delivered in one piece at the destination. Messages queue behind
// the active one up to StreamQueueMax; overflow is refused with
// Result.Err = ErrStreamBacklog (and oversized payloads with
// ErrStreamTooLarge). done (optional) observes the final Result
// exactly once in every case.
func (c *Circuit) SendStream(payload []byte, done func(Result)) {
	w := c.w
	if c.closed {
		w.sendOneShot(c.dest, payload, done)
		return
	}
	nf := (len(payload) + w.cfg.StreamFragSize - 1) / w.cfg.StreamFragSize
	if nf == 0 {
		nf = 1 // an empty message still travels as one fragment
	}
	if nf > maxStreamFrags {
		w.shedStream(c, payload, done, ErrStreamTooLarge)
		return
	}
	if len(c.streamQ) >= w.cfg.StreamQueueMax {
		w.shedStream(c, payload, done, ErrStreamBacklog)
		return
	}
	now := w.rt.Now()
	c.lastUsed = now
	w.streamSeq++
	s := &streamSend{
		c:        c,
		id:       w.streamSeq,
		payload:  payload,
		frags:    nf,
		sent:     make([]bool, nf),
		acked:    make([]bool, nf),
		retx:     make([]bool, nf),
		sentAt:   make([]time.Duration, nf),
		fastRetx: -1,
		start:    now,
		done:     done,
	}
	c.streamQ = append(c.streamQ, s)
	w.met.streamsSent.Inc()
	if c.cur == nil && c.opening == nil {
		w.openPath(c)
		if c.closed {
			return // synchronous setup failure already drained the queue
		}
	}
	w.startStreams(c)
}

// SendStream is the destination-keyed convenience: it opens (or
// reuses) the circuit to dest and streams payload over it.
// Destinations without a known key fall back to the one-shot engine.
func (w *WCL) SendStream(dest Dest, payload []byte, done func(Result)) {
	if dest.Key == nil {
		w.sendOneShot(dest, payload, done)
		return
	}
	w.OpenCircuit(dest).SendStream(payload, done)
}

// shedStream refuses a SendStream locally (backpressure or size): no
// network traffic, the error travels in Result.Err.
func (w *WCL) shedStream(c *Circuit, payload []byte, done func(Result), err error) {
	w.met.streamsShed.Inc()
	r := Result{Outcome: Failed, Err: err}
	if w.OnResult != nil {
		w.OnResult(c.dest.ID, r)
	}
	if done != nil {
		done(r)
	}
}

// startStreams activates the next queued stream message on the
// circuit's established path — the message boundary where rotation is
// allowed to fire: a path due for rotation gets its replacement opened
// and the message waits for it (the rotation-drain rule).
func (w *WCL) startStreams(c *Circuit) {
	p := c.cur
	if p == nil || p.closed || p.stream != nil || len(c.streamQ) == 0 {
		return
	}
	if w.needsRotation(p, w.rt.Now()) {
		if c.opening == nil {
			w.met.circuitsRotated.Inc()
			w.openPath(c)
		}
		return
	}
	s := c.streamQ[0]
	c.streamQ = c.streamQ[1:]
	p.stream = s
	s.path = p
	w.pumpStream(s)
	if !s.finished {
		w.armStreamTimer(s)
	}
}

// pumpStream launches fragments until the window is full or the
// message is fully on the wire.
func (w *WCL) pumpStream(s *streamSend) {
	for s.inflight < w.cfg.StreamWindow && s.next < s.frags {
		i := s.next
		s.next++
		if !w.sendStreamFrag(s, i) {
			return
		}
	}
}

// sendStreamFrag seals and launches fragment i on the stream's pinned
// path. Returns false when the path broke (the stream has already
// fallen back).
func (w *WCL) sendStreamFrag(s *streamSend, i int) bool {
	p := s.path
	f := streamFrag{StreamID: s.id, Frag: uint32(i), FragCount: uint32(s.frags), Data: s.fragData(i, w.cfg.StreamFragSize)}
	start := time.Now()
	sealed, err := crypt.SealCell(w.cpu, p.keys, encodeCellPayload(cellStream, f.encode()))
	sealDur := time.Since(start)
	if err != nil {
		w.streamBroken(s)
		return false
	}
	via, ok := w.node.RouteTo(p.first)
	if !ok {
		w.streamBroken(s)
		return false
	}
	p.seq++
	p.cells++
	w.met.cellsSent.Inc()
	w.met.streamFragsSent.Inc()
	w.Trace.Emit(obs.KindCellSend, w.rt.Now(), sealDur, len(sealed), p.id)
	msg := circDataMsg{CircID: p.id, Seq: p.seq, Cell: sealed}
	w.node.SendAppVia(p.first, via, msg.encode())
	s.c.lastSent = w.rt.Now()
	if !s.sent[i] {
		s.sent[i] = true
		s.inflight++
		w.met.streamWindow.Add(1)
	}
	s.sentAt[i] = w.rt.Now()
	return true
}

// armStreamTimer schedules the stream's retransmission round.
func (w *WCL) armStreamTimer(s *streamSend) {
	s.timer = w.rt.After(w.cfg.PathTimeout, func() {
		s.timer = nil
		if s.finished || s.path == nil || s.path.stream != s {
			return
		}
		w.streamTimerFire(s)
	})
}

// streamTimerFire runs one retransmission round: re-send every
// launched-but-unacked fragment in ascending order, and give the path
// up after StreamRetries consecutive rounds with no acked progress.
func (w *WCL) streamTimerFire(s *streamSend) {
	if s.progress {
		s.rounds = 0
	} else {
		s.rounds++
	}
	s.progress = false
	if s.rounds >= w.cfg.StreamRetries {
		w.streamBroken(s)
		return
	}
	for i := s.cum; i < s.next; i++ {
		if s.acked[i] {
			continue
		}
		s.retx[i] = true
		w.met.streamRetransmits.Inc()
		if !w.sendStreamFrag(s, i) {
			return
		}
	}
	if !s.finished {
		w.armStreamTimer(s)
	}
}

// handleCircStreamAck applies a stream acknowledgement at the source,
// or relays it backward along the stored reverse routing.
func (w *WCL) handleCircStreamAck(m streamAckMsg) {
	if p := w.circByID[m.CircID]; p != nil {
		if s := p.stream; s != nil && s.id == m.StreamID && !s.finished {
			w.streamAcked(s, m)
		}
		return
	}
	if e := w.relayCirc.get(m.CircID, w.rt.Now()); e != nil {
		w.sendCircBack(e, m.encode())
	}
}

// streamAcked folds one cumulative+selective acknowledgement into the
// send state: newly covered fragments leave the window (sampling RTT
// unless retransmitted — Karn's rule), a reported hole with later
// fragments acked triggers one fast retransmit, and a fully covered
// message finishes.
func (w *WCL) streamAcked(s *streamSend, m streamAckMsg) {
	now := w.rt.Now()
	ackFrag := func(i int) {
		if i >= s.frags || s.acked[i] {
			return
		}
		s.acked[i] = true
		s.ackedN++
		s.progress = true
		if s.sent[i] && s.inflight > 0 {
			s.inflight--
			w.met.streamWindow.Add(-1)
		}
		if !s.retx[i] {
			sample := now - s.sentAt[i]
			w.met.streamRTT.ObserveDuration(sample)
			if s.srtt == 0 {
				s.srtt = sample
			} else {
				s.srtt = (7*s.srtt + sample) / 8
			}
		}
	}
	cum := int(m.Cum)
	if cum > s.frags {
		cum = s.frags
	}
	for i := 0; i < cum; i++ {
		ackFrag(i)
	}
	for k := 0; k < 64; k++ {
		if m.Bits&(1<<uint(k)) != 0 {
			ackFrag(cum + 1 + k)
		}
	}
	for s.cum < s.frags && s.acked[s.cum] {
		s.cum++
	}
	if s.cum >= s.frags {
		w.finishStream(s)
		return
	}
	// Fast retransmit: the receiver keeps reporting a hole at s.cum
	// while later fragments arrive. The network reorders datagrams
	// freely, so a hole alone is not evidence of loss — require both
	// streamDupAckThreshold consecutive reports AND the hole's launch
	// to be older than 1.5x the smoothed RTT (RACK-style) before
	// re-sending it ahead of the timer round.
	if hole := s.cum; hole < s.next && s.ackedN > hole && s.fastRetx != hole {
		if hole != s.holeAt {
			s.holeAt, s.holeSeen = hole, 0
		}
		s.holeSeen++
		if s.holeSeen >= streamDupAckThreshold && s.srtt > 0 && now-s.sentAt[hole] > s.srtt*3/2 {
			s.fastRetx = hole
			s.retx[hole] = true
			w.met.streamRetransmits.Inc()
			if !w.sendStreamFrag(s, hole) {
				return
			}
		}
	}
	w.pumpStream(s)
}

// finishStream completes a fully acknowledged stream message: the
// Result fires, the path unpins (closing paths retire once drained),
// and the next queued message starts.
func (w *WCL) finishStream(s *streamSend) {
	if s.finished {
		return
	}
	s.finished = true
	if s.timer != nil {
		s.timer.Cancel()
		s.timer = nil
	}
	p := s.path
	if p != nil && p.stream == s {
		p.stream = nil
	}
	w.met.streamWindow.Add(-int64(s.inflight))
	s.inflight = 0
	c := s.c
	r := Result{Outcome: Success, Attempts: 1, Elapsed: w.rt.Now() - s.start}
	if w.OnResult != nil {
		w.OnResult(c.dest.ID, r)
	}
	if s.done != nil {
		s.done(r)
	}
	if p != nil && p.closing && !p.closed && w.pathDrained(p) {
		w.closePath(p, true)
	}
	if !c.closed {
		w.startStreams(c)
	}
}

// streamFallback re-sends the whole message through the one-shot
// engine — the stream's terminal failure path (path broken, rotation
// replacement failed). done fires from the one-shot machinery.
func (w *WCL) streamFallback(s *streamSend) {
	if s.finished {
		return
	}
	s.finished = true
	if s.timer != nil {
		s.timer.Cancel()
		s.timer = nil
	}
	if s.path != nil && s.path.stream == s {
		s.path.stream = nil
	}
	w.met.streamWindow.Add(-int64(s.inflight))
	s.inflight = 0
	w.met.streamFallbacks.Inc()
	w.sendOneShot(s.c.dest, s.payload, s.done)
}

// streamBroken handles a path evidently broken mid-stream: the message
// falls back whole, the path tears down, and — queued work permitting
// — a replacement path starts establishing.
func (w *WCL) streamBroken(s *streamSend) {
	p := s.path
	c := s.c
	w.streamFallback(s)
	if p != nil && !p.closed {
		w.closePath(p, false)
	}
	if !c.closed && c.cur == nil && c.opening == nil && (len(c.streamQ) > 0 || len(c.queue) > 0) {
		w.openPath(c)
	}
}

// pathDrained reports whether p carries no in-flight work: the
// condition rotation and retirement wait for, so a fragmented message
// never splits across circuits (the rotation-drain rule).
func (w *WCL) pathDrained(p *circPath) bool {
	return len(p.pendingCells) == 0 && p.stream == nil
}

// sortedSeqs returns the pending-cell sequence numbers in ascending
// order. Draining through this keeps teardown deterministic — Go map
// iteration order must never decide the order user payloads re-send
// in (it once did; fixed, regression-pinned).
func sortedSeqs(m map[uint64]*pendingCell) []uint64 {
	seqs := make([]uint64, 0, len(m))
	for seq := range m {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// ─── Exit-side reassembly ───

// streamKey identifies one stream message's reassembly state.
type streamKey struct{ circ, stream uint64 }

// streamRecvState reassembles one stream message at the exit. After
// delivery the fragment data is freed but the entry is retained (with
// delivered set) so late retransmits are re-acknowledged as fully
// received rather than re-collected.
type streamRecvState struct {
	frags     [][]byte
	have      []bool
	cum       int // contiguous received prefix length
	haveN     int
	total     int
	delivered bool
	lastSeen  time.Duration
}

// handleStreamFrag processes one stream-fragment cell at the exit:
// collect, acknowledge the current cumulative+selective state, and
// deliver the reassembled message exactly once when complete.
func (w *WCL) handleStreamFrag(e *relayCircuit, f streamFrag) {
	now := w.rt.Now()
	k := streamKey{e.id, f.StreamID}
	st := w.streamRecv[k]
	if st == nil {
		w.pruneStreamRecv(now)
		st = &streamRecvState{
			frags: make([][]byte, f.FragCount),
			have:  make([]bool, f.FragCount),
			total: int(f.FragCount),
		}
		w.streamRecv[k] = st
	}
	st.lastSeen = now
	i := int(f.Frag)
	if int(f.FragCount) != st.total || i >= st.total {
		// Inconsistent with the state this stream established — a
		// corrupt or forged fragment. Drop without acknowledging.
		w.met.peelErrors.Inc()
		return
	}
	if st.delivered || st.have[i] {
		w.met.dupStreamFrags.Inc()
		w.sendStreamAck(e, f.StreamID, st)
		return
	}
	st.have[i] = true
	st.frags[i] = append([]byte(nil), f.Data...) // f.Data aliases the cell buffer
	st.haveN++
	w.met.streamFragsRecv.Inc()
	for st.cum < st.total && st.have[st.cum] {
		st.cum++
	}
	if st.haveN == st.total {
		st.delivered = true
		size := 0
		for _, fr := range st.frags {
			size += len(fr)
		}
		buf := make([]byte, 0, size)
		for _, fr := range st.frags {
			buf = append(buf, fr...)
		}
		st.frags = nil // reassembly buffers freed; delivered entry re-acks
		w.met.streamsDelivered.Inc()
		w.met.streamBytes.Observe(float64(size))
		w.Trace.Emit(obs.KindCellDeliver, now, 0, size, e.id)
		if w.OnReceive != nil {
			w.OnReceive(buf)
		}
	}
	w.sendStreamAck(e, f.StreamID, st)
}

// streamReAck answers a deduplicated (replayed) fragment cell: the
// content was already processed under its original seq, so only the
// acknowledgement is repeated — and only when reassembly state still
// exists (recreating state from a replay could double-deliver).
func (w *WCL) streamReAck(e *relayCircuit, streamID uint64) {
	if st := w.streamRecv[streamKey{e.id, streamID}]; st != nil {
		w.met.dupStreamFrags.Inc()
		st.lastSeen = w.rt.Now()
		w.sendStreamAck(e, streamID, st)
	}
}

// sendStreamAck emits the stream's current cumulative + selective
// acknowledgement backward along the circuit.
func (w *WCL) sendStreamAck(e *relayCircuit, streamID uint64, st *streamRecvState) {
	cum := st.cum
	var bits uint64
	for k := 0; k < 64; k++ {
		i := cum + 1 + k
		if i >= st.total {
			break
		}
		if st.have[i] {
			bits |= 1 << uint(k)
		}
	}
	m := streamAckMsg{CircID: e.id, StreamID: streamID, Cum: uint32(cum), Bits: bits}
	w.sendCircBack(e, m.encode())
}

// pruneStreamRecv expires stale reassembly state and, past the bound,
// evicts oldest-first with a deterministic tie-break — reassembly
// never outlives the relay circuit entry (CircuitTTL) and never grows
// past streamRecvMax entries.
func (w *WCL) pruneStreamRecv(now time.Duration) {
	for k, st := range w.streamRecv {
		if now-st.lastSeen > w.cfg.CircuitTTL {
			delete(w.streamRecv, k)
		}
	}
	for len(w.streamRecv) >= streamRecvMax {
		var victim streamKey
		first := true
		var oldest time.Duration
		for k, st := range w.streamRecv {
			if first || st.lastSeen < oldest ||
				(st.lastSeen == oldest && (k.circ < victim.circ || (k.circ == victim.circ && k.stream < victim.stream))) {
				first = false
				oldest = st.lastSeen
				victim = k
			}
		}
		delete(w.streamRecv, victim)
	}
}

// dropStreamRecv forgets all reassembly state of one circuit (its
// relay entry was torn down).
func (w *WCL) dropStreamRecv(circID uint64) {
	for k := range w.streamRecv {
		if k.circ == circID {
			delete(w.streamRecv, k)
		}
	}
}
