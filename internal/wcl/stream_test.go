package wcl_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/sim"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// streamPayload builds a deterministic pseudo-random payload of n
// bytes (seeded so failures reproduce and corruption is detectable).
func streamPayload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestStreamTransferBasic: a 64 KiB payload rides one circuit as a
// windowed fragment stream and arrives byte-identical, delivered
// exactly once, with the window gauge drained back to zero.
func TestStreamTransferBasic(t *testing.T) {
	w := buildCircuitWorld(t, 60, 120, wcl.Config{})
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]

	var got [][]byte
	d.WCL.OnReceive = func(p []byte) { got = append(got, append([]byte(nil), p...)) }

	payload := streamPayload(1, 64<<10)
	var res *wcl.Result
	s.WCL.SendStream(destFor(w, d, 3), payload, func(r wcl.Result) { res = &r })
	w.Sim.RunFor(2 * time.Minute)

	if res == nil {
		t.Fatal("stream send never completed")
	}
	if res.Outcome == wcl.Failed {
		t.Fatalf("stream send failed: %+v", res)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1", len(got))
	}
	if !bytes.Equal(got[0], payload) {
		t.Fatalf("reassembled payload differs: %d bytes vs %d sent", len(got[0]), len(payload))
	}
	st := s.WCL.Stats()
	if st.StreamsSent != 1 {
		t.Fatalf("StreamsSent = %d, want 1", st.StreamsSent)
	}
	if want := uint64(64); st.StreamFragsSent < want {
		t.Fatalf("StreamFragsSent = %d, want ≥ %d (64 KiB / 1 KiB frags)", st.StreamFragsSent, want)
	}
	if st.StreamWindow != 0 {
		t.Fatalf("window gauge = %d after completion, want 0", st.StreamWindow)
	}
	if st.StreamFallbacks != 0 {
		t.Fatalf("clean network produced %d stream fallbacks", st.StreamFallbacks)
	}
	dst := d.WCL.Stats()
	if dst.StreamsDelivered != 1 {
		t.Fatalf("StreamsDelivered = %d, want 1", dst.StreamsDelivered)
	}
	if dst.StreamFragsRecv != st.StreamFragsSent-st.StreamRetransmits {
		t.Logf("frags recv %d / sent %d / retx %d", dst.StreamFragsRecv, st.StreamFragsSent, st.StreamRetransmits)
	}
}

// TestStreamExactlyOnceUnderFaults is the table-driven exactly-once
// suite: streams under duplication, reordering, and Gilbert-Elliott
// burst loss must deliver every message byte-identical exactly once —
// the stream's retransmission plus the exit's dedup absorb the faults.
func TestStreamExactlyOnceUnderFaults(t *testing.T) {
	cases := []struct {
		name   string
		faults netem.FaultModel
	}{
		{"duplication", netem.FaultModel{DupProb: 1}},
		{"reordering", netem.FaultModel{ReorderProb: 0.35, ReorderJitter: 300 * time.Millisecond}},
		{"dup+reorder", netem.FaultModel{DupProb: 0.5, ReorderProb: 0.25, ReorderJitter: 200 * time.Millisecond}},
		{"burst loss", netem.FaultModel{Burst: &netem.GilbertElliott{
			PGoodBad: 0.02, PBadGood: 0.3, LossGood: 0.01, LossBad: 0.6,
		}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			faults := tc.faults
			w, err := sim.NewWorld(sim.Options{
				Seed:     61,
				N:        120,
				NATRatio: 0.7,
				KeyPool:  identity.TestPool(64),
				WCL:      &wcl.Config{MinPublic: 3},
				Faults:   &faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			w.StartAll()
			w.Sim.RunUntil(5 * time.Minute)

			natted := w.LiveNatted()
			s, d := natted[0], natted[1]
			var got [][]byte
			d.WCL.OnReceive = func(p []byte) { got = append(got, append([]byte(nil), p...)) }

			const msgs = 3
			payloads := make([][]byte, msgs)
			done := make([]int, msgs)
			ok := 0
			for i := 0; i < msgs; i++ {
				i := i
				payloads[i] = streamPayload(int64(100+i), 8<<10)
				s.WCL.SendStream(destFor(w, d, 3), payloads[i], func(r wcl.Result) {
					done[i]++
					if r.Outcome != wcl.Failed {
						ok++
					}
				})
			}
			w.Sim.RunFor(4 * time.Minute)

			for i := 0; i < msgs; i++ {
				if done[i] != 1 {
					t.Fatalf("message %d: done fired %d times, want exactly 1", i, done[i])
				}
			}
			if ok < msgs {
				t.Fatalf("only %d/%d stream sends succeeded under %s", ok, msgs, tc.name)
			}
			if len(got) != msgs {
				t.Fatalf("delivered %d messages, want exactly %d (duplicates or losses)", len(got), msgs)
			}
			// Byte-identical reassembly, zero duplicate deliveries:
			// match each delivery to exactly one sent payload.
			matched := make([]bool, msgs)
			for _, g := range got {
				found := false
				for i, p := range payloads {
					if !matched[i] && bytes.Equal(g, p) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("a delivered message matches no sent payload (corrupt or duplicate reassembly)")
				}
			}
			if fs := w.Net.FaultStats(); fs.Duplicated == 0 && fs.BurstDropped == 0 && fs.Reordered == 0 {
				t.Fatalf("fault model idle under %s: %+v", tc.name, fs)
			}
		})
	}
}

// TestStreamRotationMidStream: with a tiny cell budget every message
// overruns the rotation threshold, yet each stream message must finish
// on the path it started on (the rotation-drain rule) — byte-identical
// exactly-once delivery with rotations happening between messages.
func TestStreamRotationMidStream(t *testing.T) {
	w := buildCircuitWorld(t, 62, 120, wcl.Config{CircuitMaxCells: 5})
	natted := w.LiveNatted()
	s, d := natted[2], natted[3]

	var got [][]byte
	d.WCL.OnReceive = func(p []byte) { got = append(got, append([]byte(nil), p...)) }

	const msgs = 4
	payloads := make([][]byte, msgs)
	ok := 0
	for i := 0; i < msgs; i++ {
		payloads[i] = streamPayload(int64(200+i), 16<<10) // 16 frags ≫ 5-cell budget
		s.WCL.SendStream(destFor(w, d, 3), payloads[i], func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(30 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)

	if ok < msgs {
		t.Fatalf("only %d/%d stream messages succeeded across rotations", ok, msgs)
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d messages, want exactly %d", len(got), msgs)
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("message %d not byte-identical after rotation (len %d vs %d)", i, len(got[i]), len(p))
		}
	}
	st := s.WCL.Stats()
	if st.CircuitsRotated == 0 {
		t.Fatalf("no rotation with CircuitMaxCells=5 and %d×16 fragment messages: %+v", msgs, st)
	}
	if st.StreamFallbacks != 0 {
		t.Fatalf("rotation mid-stream forced %d one-shot fallbacks — messages split across circuits?", st.StreamFallbacks)
	}
}

// TestStreamBackpressureSheds: a bounded stream queue refuses overflow
// immediately with ErrStreamBacklog instead of buffering without
// limit; the accepted messages still all deliver.
func TestStreamBackpressureSheds(t *testing.T) {
	w := buildCircuitWorld(t, 63, 120, wcl.Config{StreamQueueMax: 2})
	natted := w.LiveNatted()
	s, d := natted[4], natted[5]

	delivered := 0
	d.WCL.OnReceive = func([]byte) { delivered++ }

	// Burst far past the queue bound before the sim runs: the overflow
	// must shed synchronously.
	const burst = 8
	shed, accepted := 0, 0
	for i := 0; i < burst; i++ {
		s.WCL.SendStream(destFor(w, d, 3), streamPayload(int64(300+i), 4<<10), func(r wcl.Result) {
			if errors.Is(r.Err, wcl.ErrStreamBacklog) {
				shed++
				return
			}
			if r.Outcome != wcl.Failed {
				accepted++
			}
		})
	}
	if shed != burst-2 {
		t.Fatalf("shed %d of %d, want %d (queue bound 2)", shed, burst, burst-2)
	}
	w.Sim.RunFor(2 * time.Minute)

	if accepted != 2 {
		t.Fatalf("accepted %d streams completed, want 2", accepted)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", delivered)
	}
	if st := s.WCL.Stats(); st.StreamsShed != uint64(shed) {
		t.Fatalf("StreamsShed = %d, want %d", st.StreamsShed, shed)
	}

	// Oversized payloads shed too, with their own error.
	var tooBig *wcl.Result
	huge := make([]byte, (1<<16)*1024+1) // maxStreamFrags × default frag size + 1
	s.WCL.SendStream(destFor(w, d, 3), huge, func(r wcl.Result) { tooBig = &r })
	if tooBig == nil || !errors.Is(tooBig.Err, wcl.ErrStreamTooLarge) {
		t.Fatalf("oversized stream result = %+v, want ErrStreamTooLarge", tooBig)
	}
}

// TestStreamBrokenPathFallsBack: killing every relay holding circuit
// state mid-stream breaks the path; the in-flight message must still
// arrive — whole, exactly once — through the one-shot fallback.
func TestStreamBrokenPathFallsBack(t *testing.T) {
	w := buildCircuitWorld(t, 64, 120, wcl.Config{PathTimeout: 3 * time.Second, StreamRetries: 2})
	natted := w.LiveNatted()
	s, d := natted[6], natted[7]

	var got [][]byte
	d.WCL.OnReceive = func(p []byte) { got = append(got, append([]byte(nil), p...)) }

	// Establish first so the relays hold state to kill.
	var est *wcl.Result
	s.WCL.SendCircuit(destFor(w, d, 3), []byte("warm"), func(r wcl.Result) { est = &r })
	w.Sim.RunFor(20 * time.Second)
	if est == nil || est.Outcome == wcl.Failed || !s.WCL.HasCircuit(d.ID()) {
		t.Fatalf("circuit not established: %+v", est)
	}
	killed := 0
	for _, n := range w.Live() {
		if n == s || n == d {
			continue
		}
		if n.WCL.Stats().CircuitTableEntries > 0 {
			w.Kill(n)
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("no relay held circuit state")
	}

	payload := streamPayload(400, 8<<10)
	var res *wcl.Result
	done := 0
	s.WCL.SendStream(destFor(w, d, 3), payload, func(r wcl.Result) { done++; res = &r })
	w.Sim.RunFor(3 * time.Minute)

	if done != 1 {
		t.Fatalf("done fired %d times, want exactly 1", done)
	}
	if res.Outcome == wcl.Failed {
		t.Fatalf("stream over broken path failed outright: %+v", res)
	}
	found := 0
	for _, g := range got {
		if bytes.Equal(g, payload) {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("stream payload delivered %d times after fallback, want exactly 1", found)
	}
	if st := s.WCL.Stats(); st.StreamFallbacks != 1 {
		t.Fatalf("StreamFallbacks = %d, want 1", st.StreamFallbacks)
	}
}

// TestStreamsDisabledIsZeroBehavior pins the zero-behavior contract:
// plain one-shot and single-cell circuit traffic never put the stream
// ack tag (8) or a cellStream fragment on the wire, and every stream
// counter stays at zero on every node — the stream code is provably
// off-path until SendStream is called.
func TestStreamsDisabledIsZeroBehavior(t *testing.T) {
	w := buildCircuitWorld(t, 65, 120, wcl.Config{})
	tagsSeen := map[byte]int{}
	w.Net.SetTap(func(dg netem.Datagram) {
		r := wire.NewReader(dg.Payload)
		if r.U8() != nylon.MsgApp {
			return
		}
		if tag := r.U8(); r.Err() == nil && tag >= 1 && tag <= 8 {
			tagsSeen[tag]++
		}
	})

	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	ok := 0
	const sends = 8
	for i := 0; i < sends; i++ {
		payload := []byte(fmt.Sprintf("plain-%d", i))
		if i%2 == 0 {
			s.WCL.Send(destFor(w, d, 3), payload, func(r wcl.Result) {
				if r.Outcome != wcl.Failed {
					ok++
				}
			})
		} else {
			s.WCL.SendCircuit(destFor(w, d, 3), payload, func(r wcl.Result) {
				if r.Outcome != wcl.Failed {
					ok++
				}
			})
		}
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(time.Minute)
	if ok < sends-1 {
		t.Fatalf("only %d/%d sends succeeded", ok, sends)
	}

	if tagsSeen[5] == 0 {
		t.Fatalf("tap missed circuit data cells (parse drift?): %v", tagsSeen)
	}
	if tagsSeen[8] != 0 {
		t.Fatalf("stream ack tag appeared %d times without any SendStream", tagsSeen[8])
	}
	for _, n := range w.Live() {
		st := n.WCL.Stats()
		if st.StreamsSent+st.StreamsDelivered+st.StreamFragsSent+st.StreamFragsRecv+
			st.StreamRetransmits+st.DupStreamFrags+st.StreamsShed+st.StreamFallbacks != 0 {
			t.Fatalf("node %d has non-zero stream counters without SendStream: %+v", n.ID(), st)
		}
		if st.StreamWindow != 0 {
			t.Fatalf("node %d has window gauge %d without SendStream", n.ID(), st.StreamWindow)
		}
	}
}
