package wcl

import (
	"bytes"
	"math/rand"
	"testing"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/wire"
)

func newBareWCLWith(t testing.TB, cfg Config) *WCL {
	t.Helper()
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	ident := &identity.Identity{ID: 1, Key: identity.TestKeys(1)[0]}
	node := nylon.NewNode(simtr.New(s, nw), ident, 0, netem.Endpoint{IP: 5, Port: 1}, nil,
		nylon.Config{KeySampling: true, KeyBlobSize: 256})
	w, err := New(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestClosePathDrainsPendingInSeqOrder is the regression for the
// map-order drain bug: when a path tears down with many cells in
// flight, their one-shot fallbacks must launch in ascending sequence
// order — the order the application sent them — not in Go map
// iteration order (which varies run to run and once decided resend
// order here).
func TestClosePathDrainsPendingInSeqOrder(t *testing.T) {
	w := newBareWCLWith(t, Config{})
	// A destination with no key makes every fallback fail synchronously
	// through failEarly, so the done-callback order IS the drain order.
	c := &Circuit{w: w, dest: Dest{ID: 42}}
	p := &circPath{c: c, pendingCells: make(map[uint64]*pendingCell)}

	seqs := []uint64{7, 3, 11, 1, 9, 5, 12, 2, 10, 4, 8, 6}
	var order []uint64
	for _, seq := range seqs {
		seq := seq
		p.pendingCells[seq] = &pendingCell{
			payload: []byte{byte(seq)},
			done:    func(Result) { order = append(order, seq) },
		}
	}
	w.closePath(p, false)

	if len(order) != len(seqs) {
		t.Fatalf("drained %d cells, want %d", len(order), len(seqs))
	}
	for i, seq := range order {
		if want := uint64(i + 1); seq != want {
			t.Fatalf("drain order %v: position %d is seq %d, want %d", order, i, seq, want)
		}
	}
	if got := w.Stats().CellFallbacks; got != uint64(len(seqs)) {
		t.Fatalf("CellFallbacks = %d, want %d", got, len(seqs))
	}
}

// TestCellDedupClampedToWindow pins the exactly-once invariant between
// the exit's (circID, seq) dedup LRU and the stream send window: the
// dedup capacity must never be configurable below 4× the window (a
// window's worth of fragments can be retransmitted under fresh seqs),
// or a late retransmit of an evicted seq would be re-delivered.
func TestCellDedupClampedToWindow(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		window int
		dedup  int
	}{
		{"defaults", Config{}, 32, 4096},
		{"dedup below clamp", Config{StreamWindow: 64, CircuitDedupCells: 10}, 64, 256},
		{"window capped at 64", Config{StreamWindow: 1000, CircuitDedupCells: 10}, 64, 256},
		{"explicit large dedup kept", Config{CircuitDedupCells: 8192}, 32, 8192},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.withDefaults()
			if cfg.StreamWindow != tc.window {
				t.Fatalf("StreamWindow = %d, want %d", cfg.StreamWindow, tc.window)
			}
			if cfg.CircuitDedupCells != tc.dedup {
				t.Fatalf("CircuitDedupCells = %d, want %d", cfg.CircuitDedupCells, tc.dedup)
			}
			if cfg.CircuitDedupCells < 4*cfg.StreamWindow {
				t.Fatalf("invariant violated: dedup %d < 4×window %d", cfg.CircuitDedupCells, cfg.StreamWindow)
			}
		})
	}
	// New must actually size the exit dedup from the clamped config.
	w := newBareWCLWith(t, Config{StreamWindow: 64, CircuitDedupCells: 1})
	if got := w.deliveredCells.Cap(); got != 256 {
		t.Fatalf("deliveredCells capacity = %d, want clamped 256", got)
	}
}

// TestStreamCodecRoundTrip: encode → decode is the identity for stream
// fragments and stream acks.
func TestStreamCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 500; i++ {
		f := streamFrag{
			StreamID:  rng.Uint64(),
			Frag:      uint32(rng.Intn(1000)),
			FragCount: uint32(1000 + rng.Intn(1000)),
			Data:      make([]byte, rng.Intn(300)),
		}
		rng.Read(f.Data)
		dec, err := decodeStreamFrag(f.encode())
		if err != nil {
			t.Fatal(err)
		}
		if dec.StreamID != f.StreamID || dec.Frag != f.Frag ||
			dec.FragCount != f.FragCount || !bytes.Equal(dec.Data, f.Data) {
			t.Fatalf("fragment round trip mismatch: %+v != %+v", dec, f)
		}
	}
	for i := 0; i < 500; i++ {
		m := streamAckMsg{CircID: rng.Uint64(), StreamID: rng.Uint64(), Cum: rng.Uint32(), Bits: rng.Uint64()}
		r := wire.NewReader(m.encode())
		if got := r.U8(); got != msgCircStreamAck {
			t.Fatalf("tag = %d", got)
		}
		dec, err := decodeStreamAck(r)
		if err != nil {
			t.Fatal(err)
		}
		if dec != m {
			t.Fatalf("ack round trip mismatch: %+v != %+v", dec, m)
		}
	}
	// Out-of-range fragments are refused, not collected.
	bad := streamFrag{StreamID: 1, Frag: 0, FragCount: 0}
	if _, err := decodeStreamFrag(bad.encode()); err == nil {
		t.Fatal("zero fragment count decoded")
	}
	bad = streamFrag{StreamID: 1, Frag: 5, FragCount: 5}
	if _, err := decodeStreamFrag(bad.encode()); err == nil {
		t.Fatal("fragment index == count decoded")
	}
	bad = streamFrag{StreamID: 1, Frag: 0, FragCount: maxStreamFrags + 1}
	if _, err := decodeStreamFrag(bad.encode()); err == nil {
		t.Fatal("oversized fragment count decoded")
	}
}

// FuzzDecodeStreamFrag: arbitrary bytes never panic the fragment
// decoder, and everything it accepts re-encodes to a decodable frame.
func FuzzDecodeStreamFrag(f *testing.F) {
	f.Add([]byte{})
	f.Add((&streamFrag{StreamID: 7, Frag: 1, FragCount: 3, Data: []byte("abc")}).encode())
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		frag, err := decodeStreamFrag(b)
		if err != nil {
			return
		}
		dec, err := decodeStreamFrag(frag.encode())
		if err != nil {
			t.Fatalf("accepted fragment failed to re-decode: %v", err)
		}
		if dec.StreamID != frag.StreamID || dec.Frag != frag.Frag ||
			dec.FragCount != frag.FragCount || !bytes.Equal(dec.Data, frag.Data) {
			t.Fatalf("re-decode mismatch: %+v != %+v", dec, frag)
		}
	})
}

// FuzzDecodeStreamAck: arbitrary bytes never panic the ack decoder,
// and accepted acks round-trip.
func FuzzDecodeStreamAck(f *testing.F) {
	f.Add([]byte{})
	f.Add((&streamAckMsg{CircID: 7, StreamID: 9, Cum: 2, Bits: 5}).encode()[1:])
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeStreamAck(wire.NewReader(b))
		if err != nil {
			return
		}
		dec, err := decodeStreamAck(wire.NewReader(m.encode()[1:]))
		if err != nil || dec != m {
			t.Fatalf("re-decode mismatch: %+v != %+v (%v)", dec, m, err)
		}
	})
}
