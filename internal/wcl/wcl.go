package wcl

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/dedup"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Config parameterizes the WCL.
type Config struct {
	// MinPublic is Π: the minimum number of P-nodes the connection
	// backlog maintains (paper default 3).
	MinPublic int
	// Mixes is the number of mixes on each onion path (default 2, the
	// paper's S → A → B → D). Using f mixes tolerates f−1 colluding
	// nodes (§III, footnote 2); the extra middle mixes are P-nodes from
	// the backlog, addressed directly by endpoint.
	Mixes int
	// PathTimeout is how long the source waits for the end-to-end
	// acknowledgement before retrying with an alternative path.
	PathTimeout time.Duration
	// MaxAttempts bounds path attempts per send (default 1+Π: the first
	// try plus Π retries, per the paper's footnote 3).
	MaxAttempts int
	// AckTTL bounds how long hops remember backward-routing state.
	AckTTL time.Duration
	// Obs is the observability scope the layer's instruments register
	// under. Nil runs unobserved (counters still count).
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.MinPublic == 0 {
		c.MinPublic = 3
	}
	if c.Mixes == 0 {
		c.Mixes = 2
	}
	if c.Mixes < 2 {
		c.Mixes = 2 // fewer than two mixes cannot hide both endpoints
	}
	if c.PathTimeout == 0 {
		c.PathTimeout = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1 + c.MinPublic
	}
	if c.AckTTL == 0 {
		c.AckTTL = time.Minute
	}
	return c
}

// Helper identifies a P-node that can act as the next-to-last mix
// towards a destination (it holds a warm route to it).
type Helper struct {
	ID       identity.NodeID
	Endpoint transport.Endpoint
	Key      *rsa.PublicKey
}

// Dest is everything the source needs to open a confidential route:
// the destination's identity and public key, plus Π helper P-nodes for
// NATted destinations. The PPSS ships this information inside private
// view entries (§IV-B).
type Dest struct {
	ID  identity.NodeID
	Key *rsa.PublicKey
	// Endpoint is the destination's public address when it is a P-node:
	// the next-to-last mix can then address it directly, with no
	// pre-established association.
	Endpoint transport.Endpoint
	Helpers  []Helper
}

// Outcome classifies how a confidential send ended (Table I's columns).
type Outcome int

const (
	// Success: the first constructed path delivered and acknowledged.
	Success Outcome = iota
	// AltSuccess: the first path failed but an alternative succeeded.
	AltSuccess
	// Failed: no path delivered within the attempt budget.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case AltSuccess:
		return "alt-success"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result reports the fate of one confidential send.
type Result struct {
	Outcome Outcome
	// NoAlternative is set on failures that ended because no untried
	// (mix, helper) combination remained — Table I's "No alt." column.
	NoAlternative bool
	// Attempts is the number of paths constructed.
	Attempts int
	// MixesTried / HelpersTried count distinct first/second mixes used.
	MixesTried   int
	HelpersTried int
	// Elapsed is the time from Send to the final outcome.
	Elapsed time.Duration
}

// Stats is a snapshot of send outcomes and hop-level events, read
// through WCL.Stats.
type Stats struct {
	Sent            uint64
	FirstTrySuccess uint64
	AltSuccess      uint64
	Failed          uint64
	NoAltFailed     uint64
	MixesTriedSum   uint64
	HelpersTriedSum uint64
	Delivered       uint64
	ForwardsPeeled  uint64
	PeelErrors      uint64
	DropNoContact   uint64
	AcksForwarded   uint64
	KeyRequests     uint64
	// DupForwards counts exact duplicate forwards suppressed before the
	// peel (network duplication or replay of the same onion).
	DupForwards uint64
	// DupDeliveries counts exit-hop arrivals for an already-delivered
	// path suppressed after the peel (a late retry racing the first
	// attempt's acknowledgement). Neither Delivered nor OnReceive fires
	// for these; the acknowledgement is resent instead.
	DupDeliveries uint64
}

// met holds the layer's metric instruments (registered when Config.Obs
// is set, standalone otherwise — they count either way).
type met struct {
	sent            *obs.Counter
	firstTrySuccess *obs.Counter
	altSuccess      *obs.Counter
	failed          *obs.Counter
	noAltFailed     *obs.Counter
	mixesTriedSum   *obs.Counter
	helpersTriedSum *obs.Counter
	delivered       *obs.Counter
	forwardsPeeled  *obs.Counter
	peelErrors      *obs.Counter
	dropNoContact   *obs.Counter
	acksForwarded   *obs.Counter
	keyRequests     *obs.Counter
	dupForwards     *obs.Counter
	dupDeliveries   *obs.Counter

	buildMS   *obs.Histogram
	peelMS    *obs.Histogram
	elapsedMS *obs.Histogram
}

func newMet(sc *obs.Scope) met {
	return met{
		sent:            sc.Counter("wcl_sends_total"),
		firstTrySuccess: sc.Counter("wcl_first_try_success_total"),
		altSuccess:      sc.Counter("wcl_alt_success_total"),
		failed:          sc.Counter("wcl_failed_total"),
		noAltFailed:     sc.Counter("wcl_no_alt_failed_total"),
		mixesTriedSum:   sc.Counter("wcl_mixes_tried_total"),
		helpersTriedSum: sc.Counter("wcl_helpers_tried_total"),
		delivered:       sc.Counter("wcl_delivered_total"),
		forwardsPeeled:  sc.Counter("wcl_forwards_peeled_total"),
		peelErrors:      sc.Counter("wcl_peel_errors_total"),
		dropNoContact:   sc.Counter("wcl_drop_no_contact_total"),
		acksForwarded:   sc.Counter("wcl_acks_forwarded_total"),
		keyRequests:     sc.Counter("wcl_key_requests_total"),
		dupForwards:     sc.Counter("wcl_dup_forwards_total"),
		dupDeliveries:   sc.Counter("wcl_dup_deliveries_total"),
		buildMS:         sc.Histogram("wcl_onion_build_ms"),
		peelMS:          sc.Histogram("wcl_peel_ms"),
		elapsedMS:       sc.Histogram("wcl_send_elapsed_ms"),
	}
}

// ErrNoPath is reported (inside Result) when no usable path exists.
var ErrNoPath = errors.New("wcl: no usable path")

type ackEntry struct {
	fromID  identity.NodeID
	via     []identity.NodeID // reverse relay chain ([] = direct)
	direct  transport.Endpoint
	expires time.Duration
}

type pendingSend struct {
	pathID   uint64
	dest     Dest
	content  []byte // AES-GCM under k
	key      []byte // k
	payload  []byte
	start    time.Duration
	attempts int
	triedA   map[identity.NodeID]bool
	triedB   map[identity.NodeID]bool
	timer    transport.Timer
	done     func(Result)
}

// WCL is the Whisper communication layer of one node.
type WCL struct {
	node *nylon.Node
	cfg  Config
	rt   transport.Transport
	cb   *Backlog
	cpu  *crypt.CPUMeter

	pending     map[uint64]*pendingSend
	ackState    map[uint64]ackEntry
	pendingKeys map[identity.NodeID]time.Duration // request time, for expiry

	// seenForwards remembers recently handled forwards (pathID folded
	// with an onion digest, so distinct attempts of one path pass) and
	// makes every hop idempotent under network duplication.
	seenForwards *dedup.Seen[uint64]
	// deliveredPaths remembers path IDs this node has delivered as the
	// exit hop, giving the destination exactly-once delivery across
	// retry attempts of the same send.
	deliveredPaths *dedup.Seen[uint64]

	// OnReceive delivers decrypted payloads at the destination.
	OnReceive func(payload []byte)
	// OnResult, if set, observes the outcome of every send together
	// with its destination. The evaluation harness uses it to apply the
	// paper's accounting (footnote 3: failures of the destination node
	// itself are not WCL route failures).
	OnResult func(dest identity.NodeID, r Result)
	// Trace, when set, emits hop-level trace events (send, forward,
	// peel, deliver, retry, ack). The path ID is passed to Emit as the
	// correlation key, which obs.Tracer discards unless the collector is
	// the simulator-only omniscient observer — relay-visible telemetry
	// never carries it (see the obs package's relay-visibility rule).
	Trace *obs.Tracer

	met met
}

// New attaches a WCL to a Nylon node. The node must run with key
// sampling enabled: onion layers need the public keys of the backlog
// members. New takes over the node's OnExchange, OnKeyExchange and
// AppHandler hooks.
func New(node *nylon.Node, cfg Config) (*WCL, error) {
	if !node.Config().KeySampling {
		return nil, errors.New("wcl: nylon key sampling must be enabled")
	}
	cfg = cfg.withDefaults()
	w := &WCL{
		node:           node,
		cfg:            cfg,
		rt:             node.Runtime(),
		cb:             NewBacklog(2 * node.Config().ViewSize),
		cpu:            &crypt.CPUMeter{},
		pending:        make(map[uint64]*pendingSend),
		ackState:       make(map[uint64]ackEntry),
		pendingKeys:    make(map[identity.NodeID]time.Duration),
		seenForwards:   dedup.New[uint64](2048),
		deliveredPaths: dedup.New[uint64](1024),
		met:            newMet(cfg.Obs),
	}
	node.OnExchange = w.onExchange
	node.OnKeyExchange = w.onKeyExchange
	node.AppHandler = w.handleApp
	return w, nil
}

// Node returns the underlying Nylon node.
func (w *WCL) Node() *nylon.Node { return w.node }

// Backlog returns the connection backlog (for inspection).
func (w *WCL) Backlog() *Backlog { return w.cb }

// CPU returns the node's crypto cost meter (Table II data).
func (w *WCL) CPU() *crypt.CPUMeter { return w.cpu }

// Config returns the effective configuration.
func (w *WCL) Config() Config { return w.cfg }

// Stats returns a snapshot of the layer's counters.
func (w *WCL) Stats() Stats {
	return Stats{
		Sent:            w.met.sent.Value(),
		FirstTrySuccess: w.met.firstTrySuccess.Value(),
		AltSuccess:      w.met.altSuccess.Value(),
		Failed:          w.met.failed.Value(),
		NoAltFailed:     w.met.noAltFailed.Value(),
		MixesTriedSum:   w.met.mixesTriedSum.Value(),
		HelpersTriedSum: w.met.helpersTriedSum.Value(),
		Delivered:       w.met.delivered.Value(),
		ForwardsPeeled:  w.met.forwardsPeeled.Value(),
		PeelErrors:      w.met.peelErrors.Value(),
		DropNoContact:   w.met.dropNoContact.Value(),
		AcksForwarded:   w.met.acksForwarded.Value(),
		KeyRequests:     w.met.keyRequests.Value(),
		DupForwards:     w.met.dupForwards.Value(),
		DupDeliveries:   w.met.dupDeliveries.Value(),
	}
}

// onExchange feeds the connection backlog from successful gossip
// exchanges and tops up its P-node quota (§III-A).
func (w *WCL) onExchange(ev nylon.ExchangeEvent) {
	w.cb.Insert(ev.Peer, w.rt.Now())
	w.topUpPublics()
}

// onKeyExchange completes an explicit P-node key exchange: the path is
// verified and the key is known, so the node enters the backlog.
func (w *WCL) onKeyExchange(peer nylon.Descriptor) {
	delete(w.pendingKeys, peer.ID)
	w.cb.Insert(peer, w.rt.Now())
}

// topUpPublics enforces the Π P-node minimum in the backlog by
// contacting P-nodes from the PSS view with an explicit key exchange.
// Outstanding requests expire after a grace period so that unanswered
// ones (the P-node died) do not suppress the quota forever.
func (w *WCL) topUpPublics() {
	const keyRequestGrace = 30 * time.Second
	now := w.rt.Now()
	for id, at := range w.pendingKeys {
		if now-at > keyRequestGrace {
			delete(w.pendingKeys, id)
		}
	}
	deficit := w.cfg.MinPublic - w.cb.PublicCount() - len(w.pendingKeys)
	if deficit <= 0 {
		return
	}
	for _, e := range w.node.View() {
		if deficit <= 0 {
			break
		}
		d := e.Val
		if !d.Public || w.cb.Contains(d.ID) || d.ID == w.node.ID() {
			continue
		}
		if _, outstanding := w.pendingKeys[d.ID]; outstanding {
			continue
		}
		if err := w.node.RequestKey(d); err != nil {
			continue
		}
		w.met.keyRequests.Inc()
		w.pendingKeys[d.ID] = now
		deficit--
	}
}

// Send opens a confidential one-way route to dest and delivers payload
// over it. done (optional) receives the final Result. Content privacy
// comes from the AES encryption under a fresh key k; relationship
// anonymity from the onion path S → A → B → dest.
func (w *WCL) Send(dest Dest, payload []byte, done func(Result)) {
	w.met.sent.Inc()
	if dest.Key == nil {
		w.finishResult(&pendingSend{done: done, start: w.rt.Now()}, Failed, true)
		return
	}
	k, err := crypt.NewSymKey()
	if err != nil {
		w.finishResult(&pendingSend{done: done, start: w.rt.Now()}, Failed, true)
		return
	}
	content, err := crypt.SealSym(w.cpu, k, payload)
	if err != nil {
		w.finishResult(&pendingSend{done: done, start: w.rt.Now()}, Failed, true)
		return
	}
	st := &pendingSend{
		pathID:  w.newPathID(),
		dest:    dest,
		content: content,
		key:     k,
		payload: payload,
		start:   w.rt.Now(),
		triedA:  make(map[identity.NodeID]bool),
		triedB:  make(map[identity.NodeID]bool),
		done:    done,
	}
	w.pending[st.pathID] = st
	w.attempt(st)
}

// newPathID draws a fresh path identifier. Zero is reserved (it is the
// pathID of the throwaway state used for sends that fail before a path
// exists), and identifiers of in-flight sends are skipped so a
// collision cannot alias two pending entries.
func (w *WCL) newPathID() uint64 {
	for {
		id := w.rt.Rand().Uint64()
		if id == 0 {
			continue
		}
		if _, inFlight := w.pending[id]; inFlight {
			continue
		}
		return id
	}
}

// pickMixes chooses an untried (A, B) pair plus any extra middle
// mixes: A from the connection backlog (any node with a known key), B
// from the destination's helper set (or, for destinations that are
// themselves P-nodes, any P-node of the backlog), middles from the
// backlog's P-nodes. Returns false when no untried combination remains.
func (w *WCL) pickMixes(st *pendingSend) (a nylon.Descriptor, middles []Helper, b Helper, ok bool) {
	rng := w.rt.Rand()
	exclude := map[identity.NodeID]bool{w.node.ID(): true, st.dest.ID: true}

	helpers := st.dest.Helpers
	if len(helpers) == 0 {
		// P-node destination: any backlog P-node with a known key works.
		for _, e := range w.cb.Publics() {
			if key := w.node.Keys().Get(e.Desc.ID); key != nil {
				helpers = append(helpers, Helper{ID: e.Desc.ID, Endpoint: e.Desc.Contact, Key: key})
			}
		}
	}
	var bs []Helper
	for _, h := range helpers {
		if h.Key != nil && !st.triedB[h.ID] && !exclude[h.ID] {
			bs = append(bs, h)
		}
	}
	// First mix: random entry from the freshest half of the backlog
	// (the most recently opened routes are the most likely to still be
	// warm under churn) with a known key. Prefer untried; fall back to
	// a previously tried A when fresh helpers remain, then to the
	// stale half.
	pickA := func(tried map[identity.NodeID]bool) (nylon.Descriptor, bool) {
		var fresh, stale []nylon.Descriptor
		entries := w.cb.Entries() // newest first
		for i, e := range entries {
			d := e.Desc
			if exclude[d.ID] || (tried != nil && tried[d.ID]) {
				continue
			}
			if w.node.Keys().Get(d.ID) == nil {
				continue
			}
			if i < (len(entries)+1)/2 {
				fresh = append(fresh, d)
			} else {
				stale = append(stale, d)
			}
		}
		if len(fresh) > 0 {
			return fresh[rng.Intn(len(fresh))], true
		}
		if len(stale) > 0 {
			return stale[rng.Intn(len(stale))], true
		}
		return nylon.Descriptor{}, false
	}

	if len(bs) == 0 {
		return a, nil, b, false
	}
	b = bs[rng.Intn(len(bs))]
	if a, ok = pickA(st.triedA); !ok {
		a, ok = pickA(nil) // reuse a tried A with a fresh B
	}
	if ok && a.ID == b.ID {
		// Avoid A == B: rescue-scan for a different A, preferring ones
		// not yet tried so the attempt budget is not spent re-testing a
		// mix already known to fail (and MixesTried stays honest).
		rescue := func(skipTried bool) (nylon.Descriptor, bool) {
			for _, e := range w.cb.Entries() {
				d := e.Desc
				if d.ID == b.ID || exclude[d.ID] || (skipTried && st.triedA[d.ID]) {
					continue
				}
				if w.node.Keys().Get(d.ID) == nil {
					continue
				}
				return d, true
			}
			return nylon.Descriptor{}, false
		}
		var found bool
		if a, found = rescue(true); !found {
			a, found = rescue(false)
		}
		if !found {
			return a, nil, b, false
		}
	}
	if !ok {
		return a, nil, b, false
	}
	// Extra middle mixes for longer paths: P-nodes from the backlog,
	// distinct from everything already on the path.
	if extra := w.cfg.Mixes - 2; extra > 0 {
		used := map[identity.NodeID]bool{a.ID: true, b.ID: true, st.dest.ID: true, w.node.ID(): true}
		for _, e := range w.cb.Publics() {
			if len(middles) == extra {
				break
			}
			d := e.Desc
			if used[d.ID] || d.Contact.IsZero() {
				continue
			}
			key := w.node.Keys().Get(d.ID)
			if key == nil {
				continue
			}
			used[d.ID] = true
			middles = append(middles, Helper{ID: d.ID, Endpoint: d.Contact, Key: key})
		}
		if len(middles) < extra {
			return a, nil, b, false // not enough distinct P-nodes yet
		}
		rng.Shuffle(len(middles), func(i, j int) { middles[i], middles[j] = middles[j], middles[i] })
	}
	return a, middles, b, true
}

// attempt constructs and launches one onion path for st.
func (w *WCL) attempt(st *pendingSend) {
	a, middles, b, ok := w.pickMixes(st)
	if !ok {
		w.finishResult(st, Failed, true)
		return
	}
	st.attempts++
	st.triedA[a.ID] = true
	st.triedB[b.ID] = true

	aKey := w.node.Keys().Get(a.ID)
	dAddr := encodeAddrID(st.dest.ID)
	if !st.dest.Endpoint.IsZero() {
		dAddr = encodeAddrEndpoint(st.dest.Endpoint, st.dest.ID)
	}
	hops := make([]crypt.Hop, 0, w.cfg.Mixes+1)
	hops = append(hops, crypt.Hop{Pub: aKey})
	for _, m := range middles {
		hops = append(hops, crypt.Hop{Pub: m.Key, Addr: encodeAddrEndpoint(m.Endpoint, m.ID)})
	}
	hops = append(hops, crypt.Hop{Pub: b.Key, Addr: encodeAddrEndpoint(b.Endpoint, b.ID)})
	hops = append(hops, crypt.Hop{Pub: st.dest.Key, Addr: dAddr})
	start := time.Now()
	onion, err := crypt.BuildOnion(w.cpu, hops, st.key)
	buildTime := time.Since(start)
	w.met.buildMS.ObserveDuration(buildTime)
	w.Trace.Emit(obs.KindSend, w.rt.Now(), buildTime, len(onion), st.pathID)
	if err != nil {
		w.retry(st)
		return
	}
	via, routable := w.node.RouteTo(a)
	if !routable {
		w.retry(st)
		return
	}
	fwd := forwardMsg{PathID: st.pathID, From: w.node.ID(), ViaPath: via, Onion: onion, Content: st.content}
	w.node.SendAppVia(a, via, fwd.encode())
	st.timer = w.rt.After(w.cfg.PathTimeout, func() {
		if _, live := w.pending[st.pathID]; live {
			w.retry(st)
		}
	})
}

// retry tries the next alternative or gives up.
func (w *WCL) retry(st *pendingSend) {
	if st.timer != nil {
		st.timer.Cancel()
	}
	if st.attempts >= w.cfg.MaxAttempts {
		w.finishResult(st, Failed, false)
		return
	}
	w.Trace.Emit(obs.KindRetry, w.rt.Now(), 0, 0, st.pathID)
	w.attempt(st)
}

func (w *WCL) finishResult(st *pendingSend, outcome Outcome, noAlt bool) {
	if st.timer != nil {
		st.timer.Cancel()
	}
	// Only remove the entry this exact send owns: early-failure sends
	// carry a throwaway state whose zero pathID must not evict (and a
	// stale timer must not double-finish) a live entry under that key.
	if cur, ok := w.pending[st.pathID]; ok && cur == st {
		delete(w.pending, st.pathID)
	}
	switch {
	case outcome == Success:
		w.met.firstTrySuccess.Inc()
	case outcome == AltSuccess:
		w.met.altSuccess.Inc()
	default:
		w.met.failed.Inc()
		if noAlt {
			w.met.noAltFailed.Inc()
		}
	}
	w.met.mixesTriedSum.Add(uint64(len(st.triedA)))
	w.met.helpersTriedSum.Add(uint64(len(st.triedB)))
	r := Result{
		Outcome:       outcome,
		NoAlternative: noAlt,
		Attempts:      st.attempts,
		MixesTried:    len(st.triedA),
		HelpersTried:  len(st.triedB),
		Elapsed:       w.rt.Now() - st.start,
	}
	w.met.elapsedMS.ObserveDuration(r.Elapsed)
	if w.OnResult != nil {
		w.OnResult(st.dest.ID, r)
	}
	if st.done != nil {
		st.done(r)
	}
}

// handleApp dispatches WCL messages arriving over nylon.
func (w *WCL) handleApp(src transport.Endpoint, payload []byte) {
	if len(payload) == 0 {
		return
	}
	r := wire.NewReader(payload)
	switch r.U8() {
	case msgForward:
		m, err := decodeForward(r)
		if err != nil {
			return
		}
		w.handleForward(src, m)
	case msgAck:
		pathID := r.U64()
		if r.Err() != nil {
			return
		}
		w.handleAck(pathID)
	}
}

// handleForward peels one onion layer and forwards, or delivers when
// this node is the destination.
func (w *WCL) handleForward(src transport.Endpoint, m *forwardMsg) {
	// Exact duplicates (network duplication, replayed datagrams) are
	// suppressed before the expensive peel. The key folds in an onion
	// digest so retry attempts of the same path — same pathID, fresh
	// onion — still pass. If this node already delivered the path as its
	// exit hop, the duplicate means the forward outran our ack (or the
	// ack was lost), so answer it again instead of staying silent.
	if w.seenForwards.Add(m.PathID ^ fnvSum(m.Onion)) {
		w.met.dupForwards.Inc()
		if w.deliveredPaths.Contains(m.PathID) {
			w.sendAckBack(m.PathID)
		}
		return
	}
	start := time.Now()
	next, inner, exit, err := crypt.Peel(w.cpu, w.node.Identity().Key, m.Onion)
	peelTime := time.Since(start)
	w.met.peelMS.ObserveDuration(peelTime)
	w.Trace.Emit(obs.KindPeel, w.rt.Now(), peelTime, len(m.Onion), m.PathID)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	w.met.forwardsPeeled.Inc()
	// Remember how to route the acknowledgement backwards.
	w.pruneAckState()
	w.ackState[m.PathID] = ackEntry{
		fromID:  m.From,
		via:     reverseIDs(m.ViaPath),
		direct:  src,
		expires: w.rt.Now() + w.cfg.AckTTL,
	}
	if exit {
		// A later attempt of a path this node already delivered (the
		// source retried because the first ack was slow or lost): ack
		// again, but deliver the plaintext exactly once.
		if w.deliveredPaths.Contains(m.PathID) {
			w.met.dupDeliveries.Inc()
			w.sendAckBack(m.PathID)
			return
		}
		// inner is the content key k.
		pt, err := crypt.OpenSym(w.cpu, inner, m.Content)
		if err != nil {
			w.met.peelErrors.Inc()
			return
		}
		w.deliveredPaths.Add(m.PathID)
		w.met.delivered.Inc()
		w.Trace.Emit(obs.KindDeliver, w.rt.Now(), 0, len(pt), m.PathID)
		if w.OnReceive != nil {
			w.OnReceive(pt)
		}
		w.sendAckBack(m.PathID)
		return
	}
	addr, err := decodeHopAddr(next)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	fwd := forwardMsg{PathID: m.PathID, From: w.node.ID(), Onion: inner, Content: m.Content}
	switch addr.kind {
	case addrByEndpoint:
		// The A→B hop: B is a P-node, no setup needed.
		w.node.SendAppDirect(addr.ep, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.PathID)
	case addrByID:
		// The B→D hop: rides the warm route from B's recent gossip
		// exchange with D. If the direct association has gone cold, any
		// route B's PSS view still knows (the Nylon invariant) is used
		// as a fallback.
		d := nylon.Descriptor{ID: addr.id}
		via, ok := w.node.RouteTo(d)
		if !ok {
			// The backlog remembers the relay route of the gossip
			// exchange that made this node a helper for the target.
			for _, be := range w.cb.Entries() {
				if be.Desc.ID == addr.id {
					d = be.Desc
					via, ok = w.node.RouteTo(d)
					break
				}
			}
		}
		if !ok {
			if vd, have := w.node.ViewDescriptor(addr.id); have {
				d = vd
				via, ok = w.node.RouteTo(d)
			}
		}
		if !ok {
			w.met.dropNoContact.Inc()
			return
		}
		fwd.ViaPath = via
		w.node.SendAppVia(d, via, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.PathID)
	}
}

// handleAck resolves a pending send or forwards the acknowledgement one
// hop backwards.
func (w *WCL) handleAck(pathID uint64) {
	if st, ok := w.pending[pathID]; ok {
		outcome := Success
		if st.attempts > 1 {
			outcome = AltSuccess
		}
		w.finishResult(st, outcome, false)
		return
	}
	w.sendAckBack(pathID)
}

func (w *WCL) sendAckBack(pathID uint64) {
	st, ok := w.ackState[pathID]
	if !ok || w.rt.Now() > st.expires {
		return
	}
	w.met.acksForwarded.Inc()
	w.Trace.Emit(obs.KindAck, w.rt.Now(), 0, 0, pathID)
	ack := encodeAck(pathID)
	if len(st.via) == 0 {
		w.node.SendAppDirect(st.direct, ack)
		return
	}
	w.node.SendAppVia(nylon.Descriptor{ID: st.fromID}, st.via, ack)
}

// pruneAckState drops expired backward-routing entries; called on
// insertion so the map stays bounded without a dedicated timer.
func (w *WCL) pruneAckState() {
	if len(w.ackState) < 512 {
		return
	}
	now := w.rt.Now()
	for id, e := range w.ackState {
		if now > e.expires {
			delete(w.ackState, id)
		}
	}
}

// fnvSum digests an onion blob for the duplicate-forward key. FNV-1a is
// plenty here: the key only gates a bounded suppression window, and a
// (pathID, digest) collision merely drops one datagram — the retry
// machinery absorbs that like any network loss.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func reverseIDs(ids []identity.NodeID) []identity.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]identity.NodeID, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}
