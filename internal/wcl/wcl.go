// Package wcl implements the WHISPER communication layer: confidential
// one-way routes over onion paths (§III-A), split across files by role —
// send.go (source-side one-shot path engine), circuit.go (the circuit
// layer amortizing onion setup over message streams), forward.go
// (relay/exit handling), ack.go (backward acknowledgements).
package wcl

import (
	"errors"
	"fmt"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/dedup"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
)

// Config parameterizes the WCL.
type Config struct {
	// MinPublic is Π: the minimum number of P-nodes the connection
	// backlog maintains (paper default 3).
	MinPublic int
	// Mixes is the number of mixes on each onion path (default 2, the
	// paper's S → A → B → D). Using f mixes tolerates f−1 colluding
	// nodes (§III, footnote 2); the extra middle mixes are P-nodes from
	// the backlog, addressed directly by endpoint.
	Mixes int
	// PathTimeout is how long the source waits for the end-to-end
	// acknowledgement before retrying with an alternative path.
	PathTimeout time.Duration
	// MaxAttempts bounds path attempts per send (default 1+Π: the first
	// try plus Π retries, per the paper's footnote 3).
	MaxAttempts int
	// AckTTL bounds how long hops remember backward-routing state.
	AckTTL time.Duration

	// Circuits opts Send into the circuit layer: a first send to a
	// destination establishes a circuit over the one-shot onion
	// machinery and later sends ride it as RSA-free data cells. Off by
	// default — one-shot remains the wire behavior unless a caller asks
	// for circuits (the PPSS persistent pool turns them on for its
	// members). SendCircuit works regardless of this flag.
	Circuits bool
	// CircuitMaxAge rotates a circuit that has been established longer
	// than this, bounding how long one circuit identifier stays
	// observable on a path (default 15 minutes).
	CircuitMaxAge time.Duration
	// CircuitMaxCells rotates a circuit after this many data cells
	// (default 512).
	CircuitMaxCells int
	// CircuitIdle tears a circuit down after this long without an
	// application send (default 5 minutes).
	CircuitIdle time.Duration
	// CircuitKeepalive is the ping period keeping an established but
	// momentarily quiet circuit's relay entries warm (default 1 minute).
	CircuitKeepalive time.Duration
	// CircuitTableMax bounds the relay-side circuit table (default
	// 4096 entries, LRU-evicted).
	CircuitTableMax int
	// CircuitTTL expires relay-side circuit entries this long after
	// their last use (default 5 minutes).
	CircuitTTL time.Duration
	// CircuitDedupCells bounds the exit-side (circID, seq) cell dedup
	// LRU (default 4096). Invariant: the window must never evict a seq
	// that could still be retransmitted, or a late retransmit would be
	// re-delivered and break exactly-once — withDefaults therefore
	// clamps it to at least 4× StreamWindow (each windowed fragment can
	// be retransmitted under fresh seqs, so a single window of frags
	// can occupy several windows' worth of dedup entries).
	CircuitDedupCells int

	// StreamFragSize is the payload carried by one stream fragment cell
	// (default DefaultStreamFragSize). Circuit.SendStream splits larger
	// payloads into fragments of this size.
	StreamFragSize int
	// StreamWindow is the per-stream sliding send window: the maximum
	// number of unacknowledged fragments in flight (default 32, capped
	// at 64 — the selective-ack bitmap is one 64-bit word).
	StreamWindow int
	// StreamQueueMax bounds the stream messages queued per circuit
	// behind the active one; overflow is shed with ErrStreamBacklog
	// rather than buffered without limit (default 16).
	StreamQueueMax int
	// StreamRetries is how many consecutive retransmission rounds
	// without any acknowledged progress a stream tolerates before the
	// path is declared broken and the whole message falls back to a
	// one-shot send (default 4).
	StreamRetries int

	// Obs is the observability scope the layer's instruments register
	// under. Nil runs unobserved (counters still count).
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.MinPublic == 0 {
		c.MinPublic = 3
	}
	if c.Mixes == 0 {
		c.Mixes = 2
	}
	if c.Mixes < 2 {
		c.Mixes = 2 // fewer than two mixes cannot hide both endpoints
	}
	if c.PathTimeout == 0 {
		c.PathTimeout = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1 + c.MinPublic
	}
	if c.AckTTL == 0 {
		c.AckTTL = time.Minute
	}
	if c.CircuitMaxAge == 0 {
		c.CircuitMaxAge = 15 * time.Minute
	}
	if c.CircuitMaxCells == 0 {
		c.CircuitMaxCells = 512
	}
	if c.CircuitIdle == 0 {
		c.CircuitIdle = 5 * time.Minute
	}
	if c.CircuitKeepalive == 0 {
		c.CircuitKeepalive = time.Minute
	}
	if c.CircuitTableMax == 0 {
		c.CircuitTableMax = 4096
	}
	if c.CircuitTTL == 0 {
		c.CircuitTTL = 5 * time.Minute
	}
	if c.StreamFragSize == 0 {
		c.StreamFragSize = DefaultStreamFragSize
	}
	if c.StreamWindow == 0 {
		c.StreamWindow = 32
	}
	if c.StreamWindow > 64 {
		c.StreamWindow = 64 // sack bitmap is one u64
	}
	if c.StreamQueueMax == 0 {
		c.StreamQueueMax = 16
	}
	if c.StreamRetries == 0 {
		c.StreamRetries = 4
	}
	if c.CircuitDedupCells == 0 {
		c.CircuitDedupCells = 4096
	}
	// Exactly-once invariant: the dedup window must outlive any seq a
	// stream retransmit can still put on the wire (see the field doc).
	if min := 4 * c.StreamWindow; c.CircuitDedupCells < min {
		c.CircuitDedupCells = min
	}
	return c
}

// Helper identifies a P-node that can act as the next-to-last mix
// towards a destination (it holds a warm route to it).
type Helper struct {
	ID       identity.NodeID
	Endpoint transport.Endpoint
	Key      crypt.PublicKey
}

// Dest is everything the source needs to open a confidential route:
// the destination's identity and public key, plus Π helper P-nodes for
// NATted destinations. The PPSS ships this information inside private
// view entries (§IV-B).
type Dest struct {
	ID  identity.NodeID
	Key crypt.PublicKey
	// Endpoint is the destination's public address when it is a P-node:
	// the next-to-last mix can then address it directly, with no
	// pre-established association.
	Endpoint transport.Endpoint
	Helpers  []Helper
}

// Outcome classifies how a confidential send ended (Table I's columns).
type Outcome int

const (
	// Success: the first constructed path delivered and acknowledged.
	Success Outcome = iota
	// AltSuccess: the first path failed but an alternative succeeded.
	AltSuccess
	// Failed: no path delivered within the attempt budget.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case AltSuccess:
		return "alt-success"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result reports the fate of one confidential send.
type Result struct {
	Outcome Outcome
	// NoAlternative is set on failures that ended because no untried
	// (mix, helper) combination remained — Table I's "No alt." column.
	NoAlternative bool
	// Attempts is the number of paths constructed.
	Attempts int
	// MixesTried / HelpersTried count distinct first/second mixes used.
	MixesTried   int
	HelpersTried int
	// Elapsed is the time from Send to the final outcome.
	Elapsed time.Duration
	// Err carries the reason for a local refusal that never reached the
	// network: ErrStreamBacklog (the circuit's stream queue was full)
	// or ErrStreamTooLarge. Nil for every networked outcome.
	Err error
}

// Stats is a snapshot of send outcomes and hop-level events, read
// through WCL.Stats.
type Stats struct {
	Sent            uint64
	FirstTrySuccess uint64
	AltSuccess      uint64
	Failed          uint64
	NoAltFailed     uint64
	MixesTriedSum   uint64
	HelpersTriedSum uint64
	Delivered       uint64
	ForwardsPeeled  uint64
	PeelErrors      uint64
	DropNoContact   uint64
	AcksForwarded   uint64
	KeyRequests     uint64
	// DupForwards counts exact duplicate forwards suppressed before the
	// peel (network duplication or replay of the same onion).
	DupForwards uint64
	// DupDeliveries counts exit-hop arrivals for an already-delivered
	// path suppressed after the peel (a late retry racing the first
	// attempt's acknowledgement). Neither Delivered nor OnReceive fires
	// for these; the acknowledgement is resent instead.
	DupDeliveries uint64

	// Circuit layer (see circuit.go). Opened counts setup launches,
	// Established successful handshakes, Failed setups that exhausted
	// the attempt budget, Rotated age/volume-triggered replacements,
	// Closed graceful and broken teardowns of established paths.
	CircuitsOpened      uint64
	CircuitsEstablished uint64
	CircuitsFailed      uint64
	CircuitsRotated     uint64
	CircuitsClosed      uint64
	// CellsSent/Acked count source-side data+keepalive cells;
	// CellsForwarded relay hops; CellsDelivered exit-hop app payloads.
	CellsSent      uint64
	CellsAcked     uint64
	CellsForwarded uint64
	CellsDelivered uint64
	// DupCells counts exit-hop duplicate cells suppressed (re-acked).
	DupCells uint64
	// CellDrops counts cells dropped at a relay with no table entry
	// (expired, evicted, or never set up).
	CellDrops uint64
	// CellFallbacks counts data cells that timed out on a circuit and
	// were re-sent through the one-shot path.
	CellFallbacks uint64
	// Keepalives counts ping cells sent to keep idle circuits warm.
	Keepalives uint64

	// Stream layer (see stream.go). StreamsSent counts SendStream
	// messages launched at the source, StreamsDelivered complete
	// reassembled messages handed to the exit's OnReceive,
	// StreamFragsSent/StreamFragsRecv individual fragment cells
	// (retransmissions included on the send side, duplicates excluded
	// on the receive side), StreamRetransmits re-sent fragments,
	// DupStreamFrags exit-side duplicate fragments (re-acked),
	// StreamsShed SendStream calls refused with ErrStreamBacklog or
	// ErrStreamTooLarge, StreamFallbacks stream messages re-sent whole
	// through the one-shot engine after their path broke.
	StreamsSent       uint64
	StreamsDelivered  uint64
	StreamFragsSent   uint64
	StreamFragsRecv   uint64
	StreamRetransmits uint64
	DupStreamFrags    uint64
	StreamsShed       uint64
	StreamFallbacks   uint64

	// CircuitsOpen / CircuitTableEntries are point-in-time gauge values:
	// established source-side circuits and relay-side table entries.
	// StreamWindow is the current window occupancy: stream fragments in
	// flight (sent, unacknowledged) across all circuits of this node.
	CircuitsOpen        int64
	CircuitTableEntries int64
	StreamWindow        int64
}

// met holds the layer's metric instruments (registered when Config.Obs
// is set, standalone otherwise — they count either way).
type met struct {
	sent            *obs.Counter
	firstTrySuccess *obs.Counter
	altSuccess      *obs.Counter
	failed          *obs.Counter
	noAltFailed     *obs.Counter
	mixesTriedSum   *obs.Counter
	helpersTriedSum *obs.Counter
	delivered       *obs.Counter
	forwardsPeeled  *obs.Counter
	peelErrors      *obs.Counter
	dropNoContact   *obs.Counter
	acksForwarded   *obs.Counter
	keyRequests     *obs.Counter
	dupForwards     *obs.Counter
	dupDeliveries   *obs.Counter

	circuitsOpened      *obs.Counter
	circuitsEstablished *obs.Counter
	circuitsFailed      *obs.Counter
	circuitsRotated     *obs.Counter
	circuitsClosed      *obs.Counter
	cellsSent           *obs.Counter
	cellsAcked          *obs.Counter
	cellsForwarded      *obs.Counter
	cellsDelivered      *obs.Counter
	dupCells            *obs.Counter
	cellDrops           *obs.Counter
	cellFallbacks       *obs.Counter
	keepalives          *obs.Counter

	streamsSent       *obs.Counter
	streamsDelivered  *obs.Counter
	streamFragsSent   *obs.Counter
	streamFragsRecv   *obs.Counter
	streamRetransmits *obs.Counter
	dupStreamFrags    *obs.Counter
	streamsShed       *obs.Counter
	streamFallbacks   *obs.Counter

	circuitsOpen *obs.Gauge
	circuitTable *obs.Gauge
	streamWindow *obs.Gauge

	buildMS     *obs.Histogram
	peelMS      *obs.Histogram
	elapsedMS   *obs.Histogram
	establishMS *obs.Histogram
	cellMS      *obs.Histogram
	streamBytes *obs.Histogram
	streamRTT   *obs.Histogram
}

func newMet(sc *obs.Scope) met {
	return met{
		sent:            sc.Counter("wcl_sends_total"),
		firstTrySuccess: sc.Counter("wcl_first_try_success_total"),
		altSuccess:      sc.Counter("wcl_alt_success_total"),
		failed:          sc.Counter("wcl_failed_total"),
		noAltFailed:     sc.Counter("wcl_no_alt_failed_total"),
		mixesTriedSum:   sc.Counter("wcl_mixes_tried_total"),
		helpersTriedSum: sc.Counter("wcl_helpers_tried_total"),
		delivered:       sc.Counter("wcl_delivered_total"),
		forwardsPeeled:  sc.Counter("wcl_forwards_peeled_total"),
		peelErrors:      sc.Counter("wcl_peel_errors_total"),
		dropNoContact:   sc.Counter("wcl_drop_no_contact_total"),
		acksForwarded:   sc.Counter("wcl_acks_forwarded_total"),
		keyRequests:     sc.Counter("wcl_key_requests_total"),
		dupForwards:     sc.Counter("wcl_dup_forwards_total"),
		dupDeliveries:   sc.Counter("wcl_dup_deliveries_total"),

		circuitsOpened:      sc.Counter("wcl_circuits_opened_total"),
		circuitsEstablished: sc.Counter("wcl_circuits_established_total"),
		circuitsFailed:      sc.Counter("wcl_circuits_failed_total"),
		circuitsRotated:     sc.Counter("wcl_circuits_rotated_total"),
		circuitsClosed:      sc.Counter("wcl_circuits_closed_total"),
		cellsSent:           sc.Counter("wcl_cells_sent_total"),
		cellsAcked:          sc.Counter("wcl_cells_acked_total"),
		cellsForwarded:      sc.Counter("wcl_cells_forwarded_total"),
		cellsDelivered:      sc.Counter("wcl_cells_delivered_total"),
		dupCells:            sc.Counter("wcl_dup_cells_total"),
		cellDrops:           sc.Counter("wcl_cell_drops_total"),
		cellFallbacks:       sc.Counter("wcl_cell_fallbacks_total"),
		keepalives:          sc.Counter("wcl_circuit_keepalives_total"),

		streamsSent:       sc.Counter("wcl_streams_sent_total"),
		streamsDelivered:  sc.Counter("wcl_streams_delivered_total"),
		streamFragsSent:   sc.Counter("wcl_stream_frags_sent_total"),
		streamFragsRecv:   sc.Counter("wcl_stream_frags_recv_total"),
		streamRetransmits: sc.Counter("wcl_stream_retransmits_total"),
		dupStreamFrags:    sc.Counter("wcl_dup_stream_frags_total"),
		streamsShed:       sc.Counter("wcl_streams_shed_total"),
		streamFallbacks:   sc.Counter("wcl_stream_fallbacks_total"),

		circuitsOpen: sc.Gauge("wcl_circuits_open"),
		circuitTable: sc.Gauge("wcl_circuit_table_entries"),
		streamWindow: sc.Gauge("wcl_stream_window"),

		buildMS:     sc.Histogram("wcl_onion_build_ms"),
		peelMS:      sc.Histogram("wcl_peel_ms"),
		elapsedMS:   sc.Histogram("wcl_send_elapsed_ms"),
		establishMS: sc.Histogram("wcl_circuit_establish_ms"),
		cellMS:      sc.Histogram("wcl_cell_elapsed_ms"),
		streamBytes: sc.Histogram("wcl_stream_bytes"),
		streamRTT:   sc.Histogram("wcl_stream_rtt_ms"),
	}
}

// ErrNoPath is reported (inside Result) when no usable path exists.
var ErrNoPath = errors.New("wcl: no usable path")

// ErrStreamBacklog reports a SendStream shed because the circuit's
// bounded stream queue was full — backpressure, not a network failure.
var ErrStreamBacklog = errors.New("wcl: stream backlog full")

// ErrStreamTooLarge reports a SendStream payload exceeding the
// fragment-count bound (maxStreamFrags × StreamFragSize bytes).
var ErrStreamTooLarge = errors.New("wcl: stream payload too large")

// WCL is the Whisper communication layer of one node.
type WCL struct {
	node *nylon.Node
	cfg  Config
	rt   transport.Transport
	cb   *Backlog
	cpu  *crypt.CPUMeter

	pending     map[uint64]*pendingSend
	ackState    map[uint64]ackEntry
	pendingKeys map[identity.NodeID]time.Duration // request time, for expiry

	// Circuit layer state: source-side circuits by destination plus a
	// path-ID index, and the relay-side table (see circuit.go).
	circuits  map[identity.NodeID]*Circuit
	circByID  map[uint64]*circPath
	relayCirc *circTable
	// streamSeq issues node-unique stream identifiers (see stream.go).
	streamSeq uint64
	// deliveredCells gives the exit hop exactly-once delivery of data
	// cells under network duplication (duplicates are re-acked).
	deliveredCells *dedup.Seen[cellKey]
	// streamRecv holds exit-side stream reassembly state, keyed by
	// (circID, streamID). Entries are bounded and expire (see stream.go).
	streamRecv map[streamKey]*streamRecvState

	// seenForwards remembers recently handled forwards (pathID folded
	// with an onion digest, so distinct attempts of one path pass) and
	// makes every hop idempotent under network duplication.
	seenForwards *dedup.Seen[uint64]
	// deliveredPaths remembers path IDs this node has delivered as the
	// exit hop, giving the destination exactly-once delivery across
	// retry attempts of the same send.
	deliveredPaths *dedup.Seen[uint64]

	// OnReceive delivers decrypted payloads at the destination.
	OnReceive func(payload []byte)
	// OnResult, if set, observes the outcome of every send together
	// with its destination. The evaluation harness uses it to apply the
	// paper's accounting (footnote 3: failures of the destination node
	// itself are not WCL route failures).
	OnResult func(dest identity.NodeID, r Result)
	// Trace, when set, emits hop-level trace events (send, forward,
	// peel, deliver, retry, ack, and the circuit cell kinds). The path
	// ID is passed to Emit as the correlation key, which obs.Tracer
	// discards unless the collector is the simulator-only omniscient
	// observer — relay-visible telemetry never carries it (see the obs
	// package's relay-visibility rule).
	Trace *obs.Tracer

	met met
}

// New attaches a WCL to a Nylon node. The node must run with key
// sampling enabled: onion layers need the public keys of the backlog
// members. New takes over the node's OnExchange, OnKeyExchange and
// AppHandler hooks.
func New(node *nylon.Node, cfg Config) (*WCL, error) {
	if !node.Config().KeySampling {
		return nil, errors.New("wcl: nylon key sampling must be enabled")
	}
	cfg = cfg.withDefaults()
	w := &WCL{
		node:           node,
		cfg:            cfg,
		rt:             node.Runtime(),
		cb:             NewBacklog(2 * node.Config().ViewSize),
		cpu:            &crypt.CPUMeter{},
		pending:        make(map[uint64]*pendingSend),
		ackState:       make(map[uint64]ackEntry),
		pendingKeys:    make(map[identity.NodeID]time.Duration),
		circuits:       make(map[identity.NodeID]*Circuit),
		circByID:       make(map[uint64]*circPath),
		seenForwards:   dedup.New[uint64](2048),
		deliveredPaths: dedup.New[uint64](1024),
		deliveredCells: dedup.New[cellKey](cfg.CircuitDedupCells),
		streamRecv:     make(map[streamKey]*streamRecvState),
		met:            newMet(cfg.Obs),
	}
	w.relayCirc = newCircTable(cfg.CircuitTableMax, cfg.CircuitTTL, w.met.circuitTable)
	node.OnExchange = w.onExchange
	node.OnKeyExchange = w.onKeyExchange
	node.AppHandler = w.handleApp
	return w, nil
}

// Node returns the underlying Nylon node.
func (w *WCL) Node() *nylon.Node { return w.node }

// Backlog returns the connection backlog (for inspection).
func (w *WCL) Backlog() *Backlog { return w.cb }

// CPU returns the node's crypto cost meter (Table II data).
func (w *WCL) CPU() *crypt.CPUMeter { return w.cpu }

// Config returns the effective configuration.
func (w *WCL) Config() Config { return w.cfg }

// Stats returns a snapshot of the layer's counters.
func (w *WCL) Stats() Stats {
	return Stats{
		Sent:            w.met.sent.Value(),
		FirstTrySuccess: w.met.firstTrySuccess.Value(),
		AltSuccess:      w.met.altSuccess.Value(),
		Failed:          w.met.failed.Value(),
		NoAltFailed:     w.met.noAltFailed.Value(),
		MixesTriedSum:   w.met.mixesTriedSum.Value(),
		HelpersTriedSum: w.met.helpersTriedSum.Value(),
		Delivered:       w.met.delivered.Value(),
		ForwardsPeeled:  w.met.forwardsPeeled.Value(),
		PeelErrors:      w.met.peelErrors.Value(),
		DropNoContact:   w.met.dropNoContact.Value(),
		AcksForwarded:   w.met.acksForwarded.Value(),
		KeyRequests:     w.met.keyRequests.Value(),
		DupForwards:     w.met.dupForwards.Value(),
		DupDeliveries:   w.met.dupDeliveries.Value(),

		CircuitsOpened:      w.met.circuitsOpened.Value(),
		CircuitsEstablished: w.met.circuitsEstablished.Value(),
		CircuitsFailed:      w.met.circuitsFailed.Value(),
		CircuitsRotated:     w.met.circuitsRotated.Value(),
		CircuitsClosed:      w.met.circuitsClosed.Value(),
		CellsSent:           w.met.cellsSent.Value(),
		CellsAcked:          w.met.cellsAcked.Value(),
		CellsForwarded:      w.met.cellsForwarded.Value(),
		CellsDelivered:      w.met.cellsDelivered.Value(),
		DupCells:            w.met.dupCells.Value(),
		CellDrops:           w.met.cellDrops.Value(),
		CellFallbacks:       w.met.cellFallbacks.Value(),
		Keepalives:          w.met.keepalives.Value(),

		StreamsSent:       w.met.streamsSent.Value(),
		StreamsDelivered:  w.met.streamsDelivered.Value(),
		StreamFragsSent:   w.met.streamFragsSent.Value(),
		StreamFragsRecv:   w.met.streamFragsRecv.Value(),
		StreamRetransmits: w.met.streamRetransmits.Value(),
		DupStreamFrags:    w.met.dupStreamFrags.Value(),
		StreamsShed:       w.met.streamsShed.Value(),
		StreamFallbacks:   w.met.streamFallbacks.Value(),

		CircuitsOpen:        w.met.circuitsOpen.Value(),
		CircuitTableEntries: w.met.circuitTable.Value(),
		StreamWindow:        w.met.streamWindow.Value(),
	}
}

// onExchange feeds the connection backlog from successful gossip
// exchanges and tops up its P-node quota (§III-A).
func (w *WCL) onExchange(ev nylon.ExchangeEvent) {
	w.cb.Insert(ev.Peer, w.rt.Now())
	w.topUpPublics()
}

// onKeyExchange completes an explicit P-node key exchange: the path is
// verified and the key is known, so the node enters the backlog.
func (w *WCL) onKeyExchange(peer nylon.Descriptor) {
	delete(w.pendingKeys, peer.ID)
	w.cb.Insert(peer, w.rt.Now())
}

// topUpPublics enforces the Π P-node minimum in the backlog by
// contacting P-nodes from the PSS view with an explicit key exchange.
// Outstanding requests expire after a grace period so that unanswered
// ones (the P-node died) do not suppress the quota forever.
func (w *WCL) topUpPublics() {
	const keyRequestGrace = 30 * time.Second
	now := w.rt.Now()
	for id, at := range w.pendingKeys {
		if now-at > keyRequestGrace {
			delete(w.pendingKeys, id)
		}
	}
	deficit := w.cfg.MinPublic - w.cb.PublicCount() - len(w.pendingKeys)
	if deficit <= 0 {
		return
	}
	for _, e := range w.node.View() {
		if deficit <= 0 {
			break
		}
		d := e.Val
		if !d.Public || w.cb.Contains(d.ID) || d.ID == w.node.ID() {
			continue
		}
		if _, outstanding := w.pendingKeys[d.ID]; outstanding {
			continue
		}
		if err := w.node.RequestKey(d); err != nil {
			continue
		}
		w.met.keyRequests.Inc()
		w.pendingKeys[d.ID] = now
		deficit--
	}
}
