package wcl_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/sim"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

func buildWCLWorld(t testing.TB, seed int64, n int) *sim.World {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        n,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		WCL:      &wcl.Config{MinPublic: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute) // converge PSS + backlogs
	return w
}

// destFor assembles the WCL destination info for target the way the
// PPSS would: the target's key plus helper P-nodes from its connection
// backlog (nodes holding a warm route to it).
func destFor(w *sim.World, target *sim.Node, maxHelpers int) wcl.Dest {
	d := wcl.Dest{ID: target.ID(), Key: target.Nylon.Identity().Public()}
	for _, e := range target.WCL.Backlog().Publics() {
		h := w.Get(e.Desc.ID)
		if h == nil {
			continue
		}
		d.Helpers = append(d.Helpers, wcl.Helper{
			ID:       h.ID(),
			Endpoint: h.Nylon.Addr(),
			Key:      h.Nylon.Identity().Public(),
		})
		if len(d.Helpers) >= maxHelpers {
			break
		}
	}
	return d
}

func TestConfidentialDeliveryEndToEnd(t *testing.T) {
	w := buildWCLWorld(t, 21, 150)

	// The passive attacker taps every link.
	secret := []byte("the-secret-plan-of-the-group-7f3a")
	leaked := false
	w.Net.SetTap(func(dg netem.Datagram) {
		if bytes.Contains(dg.Payload, secret) {
			leaked = true
		}
	})

	natted := w.LiveNatted()
	type rx struct {
		payload []byte
	}
	delivered := map[identity.NodeID][]rx{}
	for _, n := range w.Live() {
		id := n.ID()
		n.WCL.OnReceive = func(p []byte) {
			delivered[id] = append(delivered[id], rx{payload: append([]byte(nil), p...)})
		}
	}

	var results []wcl.Result
	const sends = 20
	for i := 0; i < sends; i++ {
		s := natted[i%len(natted)]
		d := natted[(i+7)%len(natted)]
		if s == d {
			continue
		}
		dest := destFor(w, d, 3)
		if len(dest.Helpers) == 0 {
			t.Fatalf("destination %v has no helper P-nodes in its backlog", d.ID())
		}
		msg := append(append([]byte(nil), secret...), byte(i))
		s.WCL.Send(dest, msg, func(r wcl.Result) { results = append(results, r) })
	}
	w.Sim.RunFor(time.Minute)

	if len(results) != sends {
		t.Fatalf("got %d results, want %d", len(results), sends)
	}
	ok := 0
	for _, r := range results {
		if r.Outcome != wcl.Failed {
			ok++
		}
	}
	if ok < sends-1 {
		t.Fatalf("only %d/%d sends succeeded: %+v", ok, sends, results)
	}
	total := 0
	for _, rs := range delivered {
		for _, r := range rs {
			if !bytes.HasPrefix(r.payload, secret) {
				t.Fatal("delivered payload corrupted")
			}
			total++
		}
	}
	if total < ok {
		t.Fatalf("delivered %d < acked %d", total, ok)
	}
	if leaked {
		t.Fatal("plaintext observed on a network link")
	}
}

func TestBacklogQuotaMaintained(t *testing.T) {
	w := buildWCLWorld(t, 22, 120)
	below := 0
	for _, n := range w.Live() {
		if n.WCL.Backlog().PublicCount() < 3 {
			below++
		}
		if n.WCL.Backlog().Len() > n.WCL.Backlog().Cap() {
			t.Fatal("backlog exceeded its bound")
		}
	}
	if below > len(w.Live())/10 {
		t.Fatalf("%d/%d backlogs below Π=3 P-nodes", below, len(w.Live()))
	}
}

func TestMixesActuallyUsed(t *testing.T) {
	w := buildWCLWorld(t, 23, 120)
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	gotPayload := false
	d.WCL.OnReceive = func(p []byte) { gotPayload = true }

	var before uint64
	for _, n := range w.Live() {
		before += n.WCL.Stats().ForwardsPeeled
	}
	dest := destFor(w, d, 3)
	var res *wcl.Result
	s.WCL.Send(dest, []byte("x"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(30 * time.Second)

	if res == nil || res.Outcome == wcl.Failed {
		t.Fatalf("send failed: %+v", res)
	}
	if !gotPayload {
		t.Fatal("payload not delivered")
	}
	var after uint64
	for _, n := range w.Live() {
		after += n.WCL.Stats().ForwardsPeeled
	}
	// Three peels per successful path: A, B and D.
	if after-before < 3 {
		t.Fatalf("only %d onion peels for one delivery, want ≥ 3 (mixes skipped?)", after-before)
	}
	// The source itself never peels.
	if s.WCL.Stats().ForwardsPeeled != 0 {
		t.Fatal("source peeled its own onion")
	}
}

func TestRetryRecoversFromDeadHelper(t *testing.T) {
	w := buildWCLWorld(t, 24, 120)
	natted := w.LiveNatted()
	s, d := natted[2], natted[3]
	dest := destFor(w, d, 3)
	if len(dest.Helpers) < 2 {
		t.Skip("not enough helpers in this topology")
	}
	// Kill the first helper: paths through it will time out.
	deadID := dest.Helpers[0].ID
	w.Kill(w.Get(deadID))

	delivered := 0
	d.WCL.OnReceive = func([]byte) { delivered++ }
	var results []wcl.Result
	const sends = 8
	for i := 0; i < sends; i++ {
		s.WCL.Send(dest, []byte(fmt.Sprintf("m%d", i)), func(r wcl.Result) { results = append(results, r) })
	}
	w.Sim.RunFor(2 * time.Minute)

	okCount, altCount := 0, 0
	for _, r := range results {
		switch r.Outcome {
		case wcl.Success:
			okCount++
		case wcl.AltSuccess:
			altCount++
			okCount++
		}
	}
	if okCount < sends-1 {
		t.Fatalf("only %d/%d delivered despite live alternatives: %+v", okCount, sends, results)
	}
	if altCount == 0 {
		t.Log("note: no send happened to pick the dead helper first (random choice)")
	}
	if delivered < okCount {
		t.Fatalf("delivered %d < acked %d", delivered, okCount)
	}
}

func TestNoAlternativeFailure(t *testing.T) {
	w := buildWCLWorld(t, 25, 100)
	natted := w.LiveNatted()
	s, d := natted[4], natted[5]
	dest := destFor(w, d, 1)
	if len(dest.Helpers) != 1 {
		t.Skip("need exactly one helper for this scenario")
	}
	w.Kill(w.Get(dest.Helpers[0].ID))

	var res *wcl.Result
	s.WCL.Send(dest, []byte("doomed"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(time.Minute)
	if res == nil {
		t.Fatal("no result reported")
	}
	if res.Outcome != wcl.Failed || !res.NoAlternative {
		t.Fatalf("result = %+v, want Failed with NoAlternative", res)
	}
	if s.WCL.Stats().NoAltFailed != 1 {
		t.Fatalf("NoAltFailed = %d", s.WCL.Stats().NoAltFailed)
	}
}

func TestSendToPublicDestinationWithoutHelpers(t *testing.T) {
	// For a P-node destination the source may use any backlog P-node as
	// the next-to-last mix (§IV-B).
	w := buildWCLWorld(t, 26, 100)
	s := w.LiveNatted()[0]
	d := w.LivePublics()[0]
	got := false
	d.WCL.OnReceive = func(p []byte) { got = string(p) == "to-public" }
	dest := wcl.Dest{ID: d.ID(), Key: d.Nylon.Identity().Public()} // no helpers
	var res *wcl.Result
	s.WCL.Send(dest, []byte("to-public"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(30 * time.Second)
	if res == nil || res.Outcome == wcl.Failed || !got {
		t.Fatalf("send to public dest failed: %+v delivered=%v", res, got)
	}
}

func TestSendWithoutKeyFails(t *testing.T) {
	w := buildWCLWorld(t, 27, 60)
	s := w.Live()[0]
	var res *wcl.Result
	s.WCL.Send(wcl.Dest{ID: 999}, []byte("x"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(time.Second)
	if res == nil || res.Outcome != wcl.Failed {
		t.Fatalf("keyless send did not fail: %+v", res)
	}
}

func TestLongerMixPaths(t *testing.T) {
	// §III footnote 2: f mixes tolerate f−1 colluding nodes. With
	// Mixes=3 every delivery peels four onion layers.
	w, err := sim.NewWorld(sim.Options{
		Seed:     28,
		N:        150,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		WCL:      &wcl.Config{MinPublic: 3, Mixes: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	delivered := 0
	d.WCL.OnReceive = func(p []byte) { delivered++ }

	var before uint64
	for _, n := range w.Live() {
		before += n.WCL.Stats().ForwardsPeeled
	}
	var results []wcl.Result
	const sends = 5
	for i := 0; i < sends; i++ {
		s.WCL.Send(destFor(w, d, 3), []byte("deep"), func(r wcl.Result) { results = append(results, r) })
		w.Sim.RunFor(20 * time.Second)
	}
	w.Sim.RunFor(time.Minute)

	okCount := 0
	for _, r := range results {
		if r.Outcome != wcl.Failed {
			okCount++
		}
	}
	if okCount < sends-1 {
		t.Fatalf("only %d/%d three-mix sends succeeded: %+v", okCount, sends, results)
	}
	var after uint64
	for _, n := range w.Live() {
		after += n.WCL.Stats().ForwardsPeeled
	}
	// Four peels per delivered message: A, M, B and D.
	if got := after - before; got < uint64(4*okCount) {
		t.Fatalf("%d peels for %d deliveries, want ≥ %d (middle mix skipped?)", got, okCount, 4*okCount)
	}
	if delivered < okCount {
		t.Fatalf("delivered %d < acked %d", delivered, okCount)
	}
}

// TestRelationshipAnonymityOnTheWire plays the passive attacker of the
// threat model: it captures every datagram and parses the unencrypted
// framing of WCL forwards (the previous-hop field each mix inherently
// sees). Relationship anonymity requires that no single message — and
// hence no single observer of a link — ever connects the source and the
// destination: the source's identity must never appear on the wire
// together with the destination's address.
func TestRelationshipAnonymityOnTheWire(t *testing.T) {
	w := buildWCLWorld(t, 29, 150)
	natted := w.LiveNatted()
	s, d := natted[0], natted[1]
	dest := destFor(w, d, 3)

	// Addresses that belong to the destination: its private endpoint
	// and its NAT's external address.
	dAddrs := map[netem.IP]bool{d.Nylon.Addr().IP: true}
	if d.Dev != nil {
		dAddrs[d.Dev.External()] = true
	}
	sID := uint64(s.ID())

	type seen struct {
		from uint64
		toD  bool
	}
	var forwards []seen
	w.Net.SetTap(func(dg netem.Datagram) {
		// Parse the stable WCL forward framing: nylon app tag, then the
		// forward tag (1), path ID, previous-hop ID.
		r := wire.NewReader(dg.Payload)
		if r.U8() != nylon.MsgApp || r.U8() != 1 {
			return
		}
		_ = r.U64() // path ID
		from := r.U64()
		if r.Err() != nil {
			return
		}
		forwards = append(forwards, seen{from: from, toD: dAddrs[dg.Dst.IP]})
	})

	delivered := false
	d.WCL.OnReceive = func([]byte) { delivered = true }
	s.WCL.Send(dest, []byte("meet at the fountain"), nil)
	w.Sim.RunFor(time.Minute)

	if !delivered {
		t.Fatal("message not delivered")
	}
	if len(forwards) < 3 {
		t.Fatalf("captured only %d forwards", len(forwards))
	}
	sawSAsPredecessor := false
	for _, f := range forwards {
		if f.from == sID {
			sawSAsPredecessor = true
			if f.toD {
				t.Fatal("a single message linked the source's identity to the destination's address")
			}
		}
		if f.toD && f.from == sID {
			t.Fatal("source delivered directly to destination")
		}
	}
	if !sawSAsPredecessor {
		t.Fatal("tap never saw the first hop (parse drift?)")
	}
	// The message that reaches D names only the last mix.
	reachedD := false
	for _, f := range forwards {
		if f.toD {
			reachedD = true
			if f.from == sID {
				t.Fatal("destination learned the source at the WCL level")
			}
		}
	}
	if !reachedD {
		t.Fatal("tap never saw the final hop (NAT rewrite drift?)")
	}
}
