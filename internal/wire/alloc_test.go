package wire

import "testing"

// TestRoundTripAllocs pins the allocation behavior of the encode/decode
// hot path: a writer reused via Reset and a stack-scoped reader must
// complete a full round-trip without heap allocations. Every protocol
// message in the system flows through this path, so a regression here
// multiplies across millions of simulated exchanges.
func TestRoundTripAllocs(t *testing.T) {
	payload := make([]byte, 64)
	w := NewWriter(256)
	allocs := testing.AllocsPerRun(200, func() {
		w.Reset()
		w.U8(1)
		w.U16(2)
		w.U32(3)
		w.U64(4)
		w.Bool(true)
		w.Bytes16(payload)
		w.Bytes32(payload)
		w.Raw(payload)
		r := NewReader(w.Bytes())
		r.U8()
		r.U16()
		r.U32()
		r.U64()
		r.Bool()
		r.Bytes16()
		r.Bytes32()
		r.Raw(len(payload))
		if r.Close() != nil {
			t.Fatal("round-trip failed")
		}
	})
	if allocs > 0 {
		t.Errorf("round-trip allocates %.1f times per run, want 0", allocs)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(16)
	w.U32(7)
	first := w.Bytes()
	if len(first) != 4 {
		t.Fatalf("len = %d", len(first))
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.U16(9)
	if got := w.Bytes(); len(got) != 2 {
		t.Fatalf("len after reuse = %d", len(got))
	}
	// Reset keeps the backing buffer: no growth for same-size reuse.
	if &first[0] != &w.Bytes()[0] {
		t.Error("Reset reallocated the backing buffer")
	}
}
