// Package wire implements a compact, deterministic binary encoding used
// by every WHISPER protocol message. Deterministic sizes matter because
// the evaluation reports bandwidth per cycle; an encoding with stable
// framing makes those figures reproducible across runs.
//
// Writers never fail. Readers carry a sticky error: after the first
// malformed field every subsequent accessor returns a zero value, and
// Err reports the problem once at the end — the standard pattern for
// parsing untrusted input without error-checking every field.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned by Reader.Err when the buffer ends before a
// requested field.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is returned when a length prefix exceeds the remaining
// buffer (corrupt or hostile input).
var ErrTooLarge = errors.New("wire: length prefix exceeds buffer")

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated for sizeHint
// bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded message. The writer must not be used after,
// except through Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset empties the writer while keeping its backing buffer, so one
// writer can assemble many messages without reallocating. Slices handed
// out by Bytes are overwritten by subsequent writes; callers reusing a
// writer must be done with the previous message first.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the current encoded size.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a big-endian 16-bit value.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian 32-bit value.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian 64-bit value.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bytes32 appends a u32 length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Bytes16 appends a u16 length prefix followed by b. It panics if b is
// longer than 65535 bytes; use Bytes32 for large fields.
func (w *Writer) Bytes16(b []byte) {
	if len(b) > 0xFFFF {
		panic(fmt.Sprintf("wire: Bytes16 field of %d bytes", len(b)))
	}
	w.U16(uint16(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a u16-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	if len(s) > 0xFFFF {
		panic(fmt.Sprintf("wire: string field of %d bytes", len(s)))
	}
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// Padded appends b zero-padded (or truncated — caller beware) to
// exactly size bytes, preceded by a u16 carrying b's true length. Used
// to emulate fixed-size key blobs so bandwidth accounting matches the
// paper's 1 KB-per-key arithmetic regardless of the RSA modulus chosen
// for a run.
func (w *Writer) Padded(b []byte, size int) {
	if len(b) > size {
		panic(fmt.Sprintf("wire: Padded: %d bytes exceed blob size %d", len(b), size))
	}
	w.U16(uint16(len(b)))
	w.buf = append(w.buf, b...)
	for i := len(b); i < size; i++ {
		w.buf = append(w.buf, 0)
	}
}

// Raw appends b with no framing.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a message produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The reader does not copy buf;
// returned byte slices alias it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a big-endian 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes32 reads a u32-prefixed byte field.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err == nil && int(n) > r.Remaining() {
		r.err = ErrTooLarge
		return nil
	}
	return r.take(int(n))
}

// Bytes16 reads a u16-prefixed byte field.
func (r *Reader) Bytes16() []byte {
	n := r.U16()
	if r.err == nil && int(n) > r.Remaining() {
		r.err = ErrTooLarge
		return nil
	}
	return r.take(int(n))
}

// String reads a u16-prefixed string.
func (r *Reader) String() string { return string(r.Bytes16()) }

// Padded reads a field written by Writer.Padded with the same size.
func (r *Reader) Padded(size int) []byte {
	n := r.U16()
	blob := r.take(size)
	if blob == nil {
		return nil
	}
	if int(n) > size {
		r.err = ErrTooLarge
		return nil
	}
	return blob[:n]
}

// Raw reads n unframed bytes.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Rest returns all remaining bytes.
func (r *Reader) Rest() []byte { return r.take(r.Remaining()) }

// Close returns an error if decoding failed or unread bytes remain —
// useful at the end of a strict parse.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", r.Remaining())
	}
	return nil
}
