package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(65535)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.Bytes16([]byte("hello"))
	w.Bytes32(bytes.Repeat([]byte{0xAB}, 70000))
	w.String("wörld")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("u8/bool mismatch")
	}
	if r.U16() != 65535 || r.U32() != 1<<30 || r.U64() != 1<<60 {
		t.Fatal("int mismatch")
	}
	if string(r.Bytes16()) != "hello" {
		t.Fatal("bytes16 mismatch")
	}
	if len(r.Bytes32()) != 70000 {
		t.Fatal("bytes32 mismatch")
	}
	if r.String() != "wörld" {
		t.Fatal("string mismatch")
	}
	if !bytes.Equal(r.Raw(3), []byte{1, 2, 3}) {
		t.Fatal("raw mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncated(t *testing.T) {
	w := NewWriter(8)
	w.U64(42)
	r := NewReader(w.Bytes()[:5])
	_ = r.U64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// Sticky: everything after returns zero values.
	if r.U32() != 0 || r.Bytes16() != nil || r.String() != "" {
		t.Fatal("reader not sticky after error")
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A u32 length prefix far beyond the buffer must not allocate or
	// panic; it must error.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	r := NewReader(buf)
	if r.Bytes32() != nil {
		t.Fatal("hostile prefix yielded data")
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", r.Err())
	}
	r2 := NewReader([]byte{0xFF, 0xFF, 1})
	if r2.Bytes16() != nil || !errors.Is(r2.Err(), ErrTooLarge) {
		t.Fatalf("bytes16 hostile prefix: %v", r2.Err())
	}
}

func TestPadded(t *testing.T) {
	w := NewWriter(0)
	w.Padded([]byte("key-material"), 128)
	if w.Len() != 2+128 {
		t.Fatalf("padded len = %d, want 130", w.Len())
	}
	r := NewReader(w.Bytes())
	got := r.Padded(128)
	if string(got) != "key-material" {
		t.Fatalf("padded round trip = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Exact-size payload.
	full := bytes.Repeat([]byte{9}, 16)
	w2 := NewWriter(0)
	w2.Padded(full, 16)
	r2 := NewReader(w2.Bytes())
	if !bytes.Equal(r2.Padded(16), full) {
		t.Fatal("exact-size padded mismatch")
	}
}

func TestPaddedOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize Padded did not panic")
		}
	}()
	w := NewWriter(0)
	w.Padded(make([]byte, 10), 5)
}

func TestPaddedCorruptLength(t *testing.T) {
	// Declared length exceeds blob size.
	buf := []byte{0x00, 0xFF}
	buf = append(buf, make([]byte, 16)...)
	r := NewReader(buf)
	if r.Padded(16) != nil || !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("corrupt padded length: %v", r.Err())
	}
}

func TestCloseDetectsTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U8()
	if err := r.Close(); err == nil {
		t.Fatal("trailing byte not detected")
	}
}

func TestBytes16TooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for >64KiB Bytes16")
		}
	}()
	w := NewWriter(0)
	w.Bytes16(make([]byte, 70000))
}

// Property: any sequence of (tag, value) fields round-trips exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(u8 uint8, u16v uint16, u32v uint32, u64v uint64, blob []byte, s string) bool {
		if len(blob) > 1000 || len(s) > 1000 {
			return true
		}
		w := NewWriter(0)
		w.U8(u8)
		w.U16(u16v)
		w.U32(u32v)
		w.U64(u64v)
		w.Bytes32(blob)
		w.String(s)
		r := NewReader(w.Bytes())
		ok := r.U8() == u8 && r.U16() == u16v && r.U32() == u32v && r.U64() == u64v
		got := r.Bytes32()
		ok = ok && bytes.Equal(got, blob) && r.String() == s
		return ok && r.Close() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reader never panics on arbitrary input, whatever the
// decode schedule.
func TestPropertyNoPanicOnGarbage(t *testing.T) {
	f := func(buf []byte, schedule []uint8) bool {
		r := NewReader(buf)
		for _, op := range schedule {
			switch op % 8 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.Bytes16()
			case 5:
				r.Bytes32()
			case 6:
				_ = r.String()
			case 7:
				r.Padded(32)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriterTypicalEntry(b *testing.B) {
	blob := make([]byte, 140)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(256)
		w.U64(12345)
		w.U32(99)
		w.U16(42)
		w.U8(3)
		w.Padded(blob, 160)
		_ = w.Bytes()
	}
}
