// Package whisper is a fully decentralized middleware for confidential
// group communication in large-scale, NAT-constrained networks — a
// from-scratch Go reproduction of "WHISPER: Middleware for Confidential
// Communication in Large-Scale Networks" (Schiavoni, Rivière, Felber;
// ICDCS 2011).
//
// WHISPER provides two guarantees against honest-but-curious observers,
// without any trusted third party or dedicated infrastructure:
//
//   - content privacy: messages exchanged between the members of a
//     private group are visible only to their source and destination;
//   - membership privacy: no third party — including the relays that
//     carry traffic across NATs and the mixes on onion paths — can tell
//     that two nodes belong to the same group, or that the group exists.
//
// The stack combines a NAT-resilient gossip peer sampling service
// (Nylon), a communication layer building four-node onion routes from a
// backlog of warm NAT-traversal associations (WCL), and a private
// peer sampling service running per-group gossip entirely over such
// routes (PPSS). A T-Man/T-Chord layer on top builds a private DHT
// inside a group, the paper's flagship application.
//
// The package runs nodes on a deterministic emulated network (virtual
// time, packet-level NAT emulation), which is how the paper's entire
// evaluation is reproduced; see the examples directory and the
// whisper-exp command.
package whisper

import (
	"fmt"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/wcl"
)

// NodeID identifies a node.
type NodeID = identity.NodeID

// Options configures an emulated WHISPER network.
type Options struct {
	// Nodes is the network size (default 100).
	Nodes int
	// NATRatio is the fraction of nodes behind NAT devices, split
	// evenly across the four emulated types (default 0.7, the paper's
	// real-world figure).
	NATRatio float64
	// Seed makes runs reproducible (default 1).
	Seed int64
	// WAN switches the latency model from the 1 Gbps cluster to the
	// PlanetLab-like wide-area model.
	WAN bool
	// PSSCycle is the base gossip period (default 10 s).
	PSSCycle time.Duration
	// GroupCycle is the private gossip period (default 1 min).
	GroupCycle time.Duration
	// Pi is Π, the P-node redundancy level for views, backlogs and
	// helper sets (default 3).
	Pi int
	// KeyBits sizes RSA keys (default 1024, as in the paper's era; the
	// emulation pads keys to 1 KB on the wire either way).
	KeyBits int
	// KeyPoolSize bounds distinct RSA keys generated for large
	// networks (default 64; see identity.Pool for the trade-off).
	KeyPoolSize int
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 100
	}
	if o.NATRatio == 0 {
		o.NATRatio = 0.7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Pi == 0 {
		o.Pi = 3
	}
	return o
}

// Network is an emulated WHISPER deployment: a population of nodes on a
// virtual-time network with NAT devices, running the full stack.
type Network struct {
	w    *sim.World
	opts Options
}

// NewNetwork builds the population (this generates RSA keys; first call
// takes a few seconds) but starts no gossip until Run is called.
func NewNetwork(opts Options) (*Network, error) {
	opts = opts.withDefaults()
	model := netem.LatencyModel(netem.Cluster{})
	if opts.WAN {
		model = netem.DefaultPlanetLab()
	}
	pool, err := identity.NewPool(max(1, opts.KeyPoolSize, 64), opts.KeyBits)
	if err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     opts.Seed,
		N:        opts.Nodes,
		NATRatio: opts.NATRatio,
		Model:    model,
		KeyPool:  pool,
		Nylon:    nylon.Config{Cycle: opts.PSSCycle, MinPublic: opts.Pi},
		WCL:      &wcl.Config{MinPublic: opts.Pi},
		PPSS:     &ppss.Config{Cycle: opts.GroupCycle, MinHelpers: opts.Pi},
	})
	if err != nil {
		return nil, err
	}
	w.StartAll()
	return &Network{w: w, opts: opts}, nil
}

// Run advances the emulation by d of virtual time.
func (n *Network) Run(d time.Duration) { n.w.Sim.RunFor(d) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.w.Sim.Now() }

// Nodes returns all live nodes.
func (n *Network) Nodes() []*Node {
	live := n.w.Live()
	out := make([]*Node, len(live))
	for i, sn := range live {
		out[i] = &Node{net: n, sn: sn}
	}
	return out
}

// Node returns the live node with the given ID, or nil.
func (n *Network) Node(id NodeID) *Node {
	sn := n.w.Get(id)
	if sn == nil {
		return nil
	}
	return &Node{net: n, sn: sn}
}

// AddNode spawns a fresh node (a churn arrival) and starts it.
func (n *Network) AddNode() *Node {
	sn := n.w.Spawn()
	sn.Nylon.Start()
	return &Node{net: n, sn: sn}
}

// Node is one WHISPER participant.
type Node struct {
	net *Network
	sn  *sim.Node
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.sn.ID() }

// Public reports whether the node is publicly reachable (a P-node) or
// behind a NAT (an N-node).
func (n *Node) Public() bool { return n.sn.Public() }

// NATType describes the node's NAT device ("public" for P-nodes).
func (n *Node) NATType() string { return n.sn.Type.String() }

// Leave stops the node abruptly (crash-stop churn departure).
func (n *Node) Leave() { n.net.w.Kill(n.sn) }

// Bandwidth returns the node's total upload and download in bytes.
func (n *Node) Bandwidth() (up, down uint64) {
	s := n.sn.Nylon.Meter().Snapshot()
	return s.UpBytes, s.DownBytes
}

// CreateGroup makes this node the founding leader of a new private
// group (it generates the group key pair and a passport for itself).
func (n *Node) CreateGroup(name string) (*Group, error) {
	if n.sn.PPSS == nil {
		return nil, fmt.Errorf("whisper: node %v has no PPSS", n.ID())
	}
	inst, err := n.sn.PPSS.CreateGroup(name)
	if err != nil {
		return nil, err
	}
	return &Group{node: n, name: name, inst: inst}, nil
}

// Join requests admission to the group named in the invitation. The
// callback fires with the joined group or an error; run the network to
// let the handshake complete.
func (n *Node) Join(inv Invitation, done func(*Group, error)) {
	n.sn.PPSS.Join(inv.group, inv.accr, inv.entry, func(inst *ppss.Instance, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(&Group{node: n, name: inv.group, inst: inst}, nil)
	})
}
