package whisper_test

import (
	"strings"
	"testing"
	"time"

	"whisper"
)

// newTestNetwork builds a small converged network through the public
// API only.
func newTestNetwork(t *testing.T, seed int64, nodes int) *whisper.Network {
	t.Helper()
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      nodes,
		Seed:       seed,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(4 * time.Minute)
	return net
}

func TestPublicAPILifecycle(t *testing.T) {
	net := newTestNetwork(t, 51, 80)
	nodes := net.Nodes()
	alice, bob, carol := nodes[0], nodes[1], nodes[2]

	room, err := alice.CreateGroup("reading-club")
	if err != nil {
		t.Fatal(err)
	}
	if !room.IsLeader() || room.Name() != "reading-club" {
		t.Fatal("creator should lead the group")
	}

	// Invitation travels out of band as a token.
	inv, err := room.Invite(bob.ID())
	if err != nil {
		t.Fatal(err)
	}
	token := inv.String()
	if len(token) == 0 || strings.ContainsAny(token, " \n") {
		t.Fatalf("token not chat-safe: %q", token)
	}
	parsed, err := whisper.ParseInvitation(token)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.For() != bob.ID() || parsed.GroupName() != "reading-club" {
		t.Fatal("token round trip lost fields")
	}

	var bobRoom *whisper.Group
	bob.Join(parsed, func(g *whisper.Group, err error) {
		if err != nil {
			t.Errorf("bob join: %v", err)
			return
		}
		bobRoom = g
	})
	net.Run(time.Minute)
	if bobRoom == nil {
		t.Fatal("bob never joined")
	}
	if bobRoom.IsLeader() {
		t.Fatal("joiner must not be a leader")
	}

	// Carol joins too, via a fresh invitation.
	inv2, _ := room.Invite(carol.ID())
	var carolRoom *whisper.Group
	carol.Join(inv2, func(g *whisper.Group, err error) { carolRoom = g })
	net.Run(8 * time.Minute) // a few private gossip cycles
	if carolRoom == nil {
		t.Fatal("carol never joined")
	}

	// Members see each other through private views, nobody else.
	ids := map[whisper.NodeID]bool{alice.ID(): true, bob.ID(): true, carol.ID(): true}
	for _, m := range bobRoom.Members() {
		if !ids[m.ID] {
			t.Fatalf("non-member %v in private view", m.ID)
		}
	}

	// Confidential messaging.
	var got string
	var from whisper.NodeID
	bobRoom.OnMessage(func(m whisper.Member, payload []byte) {
		got, from = string(payload), m.ID
	})
	peer, ok := carolRoom.GetPeer()
	if !ok {
		t.Fatal("carol has empty view")
	}
	// Find bob in carol's view if present; otherwise message whoever is
	// there (all are members).
	for _, m := range carolRoom.Members() {
		if m.ID == bob.ID() {
			peer = m
		}
	}
	if peer.ID != bob.ID() {
		t.Skip("bob not yet in carol's view at this seed")
	}
	sendErr := make(chan error, 1)
	carolRoom.Send(peer, []byte("chapter 7 tonight"), func(err error) { sendErr <- err })
	net.Run(time.Minute)
	select {
	case err := <-sendErr:
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("send callback never fired")
	}
	if got != "chapter 7 tonight" || from != carol.ID() {
		t.Fatalf("got %q from %v", got, from)
	}
}

func TestInvitationTamperRejected(t *testing.T) {
	if _, err := whisper.ParseInvitation("!!not-base64!!"); err == nil {
		t.Fatal("garbage token accepted")
	}
	if _, err := whisper.ParseInvitation("aGVsbG8="); err == nil {
		t.Fatal("truncated token accepted")
	}
}

func TestNodeChurnThroughAPI(t *testing.T) {
	net := newTestNetwork(t, 52, 60)
	before := len(net.Nodes())
	n := net.AddNode()
	if net.Node(n.ID()) == nil {
		t.Fatal("AddNode not registered")
	}
	if len(net.Nodes()) != before+1 {
		t.Fatal("population wrong after AddNode")
	}
	n.Leave()
	if net.Node(n.ID()) != nil {
		t.Fatal("left node still listed")
	}
	// The rest of the network keeps going.
	net.Run(2 * time.Minute)
	up, down := net.Nodes()[0].Bandwidth()
	if up == 0 || down == 0 {
		t.Fatal("network went silent")
	}
}

func TestPrivateDHTThroughAPI(t *testing.T) {
	net := newTestNetwork(t, 53, 80)
	nodes := net.Nodes()
	members := nodes[:12]
	room, err := members[0].CreateGroup("index")
	if err != nil {
		t.Fatal(err)
	}
	groups := []*whisper.Group{room}
	for _, m := range members[1:] {
		inv, err := room.Invite(m.ID())
		if err != nil {
			t.Fatal(err)
		}
		m.Join(inv, func(g *whisper.Group, err error) {
			if err == nil {
				groups = append(groups, g)
			}
		})
		net.Run(10 * time.Second)
	}
	net.Run(8 * time.Minute)
	if len(groups) < 10 {
		t.Fatalf("only %d/%d joined", len(groups), len(members))
	}

	var dhts []*whisper.DHT
	for _, g := range groups {
		dhts = append(dhts, g.NewDHT())
	}
	net.Run(10 * time.Minute) // ring convergence

	ready := 0
	for _, d := range dhts {
		if d.Ready() {
			ready++
		}
	}
	if ready < len(dhts)*8/10 {
		t.Fatalf("only %d/%d DHT nodes ready", ready, len(dhts))
	}

	putOK := false
	dhts[0].Put("meeting-point", []byte("pier 39"), func(r whisper.LookupResult, err error) {
		putOK = err == nil
	})
	net.Run(3 * time.Minute)
	if !putOK {
		t.Fatal("Put failed")
	}
	var got []byte
	found := false
	dhts[5].Get("meeting-point", func(r whisper.LookupResult, err error) {
		if err == nil {
			got, found = r.Value, r.Found
		}
	})
	net.Run(3 * time.Minute)
	if !found || string(got) != "pier 39" {
		t.Fatalf("Get = %q found=%v", got, found)
	}
}

func TestBroadcastAndSizeThroughAPI(t *testing.T) {
	net := newTestNetwork(t, 54, 80)
	nodes := net.Nodes()
	members := nodes[:10]
	room, err := members[0].CreateGroup("assembly")
	if err != nil {
		t.Fatal(err)
	}
	groups := []*whisper.Group{room}
	for _, m := range members[1:] {
		inv, _ := room.Invite(m.ID())
		m.Join(inv, func(g *whisper.Group, err error) {
			if err == nil {
				groups = append(groups, g)
			}
		})
		net.Run(10 * time.Second)
	}
	net.Run(8 * time.Minute)
	if len(groups) < 9 {
		t.Fatalf("only %d joined", len(groups))
	}

	heard := 0
	var bcs []*whisper.Broadcast
	for _, g := range groups {
		b := g.NewBroadcast()
		b.OnDeliver(func(origin whisper.NodeID, payload []byte) {
			if string(payload) == "rally" {
				heard++
			}
		})
		bcs = append(bcs, b)
	}
	// Every member participates in the counting protocol; we read the
	// estimate from one of them.
	var ests []*whisper.SizeEstimator
	for _, g := range groups {
		ests = append(ests, g.NewSizeEstimator(8*time.Minute))
	}
	est := ests[1]
	bcs[0].Publish([]byte("rally"))
	net.Run(3 * time.Minute)
	if heard < len(groups)*8/10 {
		t.Fatalf("broadcast heard by %d/%d members", heard, len(groups))
	}

	net.Run(15 * time.Minute)
	size, ok := est.Estimate()
	if !ok || size < float64(len(groups))/2 || size > float64(len(groups))*2 {
		t.Fatalf("size estimate %.1f (ok=%v), group is %d", size, ok, len(groups))
	}
	for _, e := range ests {
		e.Stop()
	}
}
